// Package lint implements fhlint, the project's determinism-and-safety
// static analysis suite.
//
// The paper's results are reproducible only because every scheduler
// decision is bit-deterministic for a given seed. The runtime layers —
// internal/verify's auditor and internal/bench's fingerprints — check
// that property after the fact; this package enforces it at the source
// level, the way production schedulers gate merges on purpose-built
// linters rather than reviewer vigilance.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic, an analysistest-style fixture runner) but is built on the
// standard library's go/ast and go/types only: this module is
// deliberately dependency-free, and the build environment has no module
// proxy access, so x/tools is gated off rather than vendored. The
// trade-offs are documented per analyzer; the nilness, shadow and
// unusedwrite passes are conservative reimplementations of their
// x/tools namesakes, not imports of them.
//
// Diagnostics can be suppressed with a directive comment
//
//	//fhlint:ignore <analyzer> <reason>
//
// placed on the offending line or the line directly above it. The
// analyzer name must match the diagnostic being suppressed and the
// reason is mandatory; a malformed or unknown-analyzer directive is
// itself a diagnostic, so suppressions cannot rot silently.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. It is the stdlib-only
// counterpart of analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //fhlint:ignore directives.
	Name string

	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string

	// Run executes the analyzer over one package worth of files,
	// reporting findings through pass.Reportf.
	Run func(pass *Pass) error

	// Applies filters packages by import path when the analyzer runs
	// through the driver (cmd/fhlint, TestRepoIsClean). nil means the
	// analyzer applies everywhere. Fixture runs bypass the filter so
	// testdata packages are always analyzed.
	Applies func(pkgPath string) bool
}

// A Pass carries one package's syntax and type information to an
// analyzer's Run function.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// DirectiveAnalyzer is the pseudo-analyzer name under which malformed
// //fhlint:ignore directives are reported.
const DirectiveAnalyzer = "fhlint"

// Analyzers returns the full fhlint suite in stable order: the four
// project-specific determinism analyzers, the five dataflow-powered
// concurrency/durability analyzers, then the stdlib reimplementations
// of the x/tools safety passes.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Detrand,
		Mapiter,
		Memosafety,
		Seedflow,
		Locksafe,
		Durorder,
		Errsink,
		Goleak,
		Tickstop,
		Nilness,
		Shadow,
		Unusedwrite,
	}
}

// analyzerNames returns the set of valid names for ignore directives.
func analyzerNames(analyzers []*Analyzer) map[string]bool {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	return known
}

// Run executes the given analyzers over one loaded package, applies the
// //fhlint:ignore suppression filter, and returns the surviving
// diagnostics sorted by position. When useFilters is true an analyzer
// with a non-nil Applies that rejects the package path is skipped
// (driver behavior); fixture runs pass false.
func Run(pkg *Package, analyzers []*Analyzer, useFilters bool) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if useFilters && a.Applies != nil && !a.Applies(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, errRun(a.Name, pkg.Path, err)
		}
	}
	diags = Filter(pkg.Fset, pkg.Files, analyzerNames(Analyzers()), diags)
	sort.Slice(diags, func(i, j int) bool { return lessPosition(diags[i], diags[j]) })
	return diags, nil
}

func errRun(analyzer, pkgPath string, err error) error {
	return fmt.Errorf("lint: %s on %s: %w", analyzer, pkgPath, err)
}

func lessPosition(a, b Diagnostic) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	if a.Analyzer != b.Analyzer {
		return a.Analyzer < b.Analyzer
	}
	return a.Message < b.Message
}

// directive is one parsed //fhlint:ignore comment.
type directive struct {
	file     string
	line     int
	analyzer string
	reason   string
	bad      string // non-empty: why the directive is malformed
	pos      token.Pos
}

const directivePrefix = "//fhlint:ignore"

// parseDirectives extracts every //fhlint:ignore directive from the
// files' comments, validating analyzer names against known.
func parseDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool) []directive {
	var out []directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				d := directive{
					file: fset.Position(c.Pos()).Filename,
					line: fset.Position(c.Pos()).Line,
					pos:  c.Pos(),
				}
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					// "//fhlint:ignoreX" is some other token, not ours.
					continue
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					d.bad = "directive needs an analyzer name and a reason: //fhlint:ignore <analyzer> <reason>"
				case !known[fields[0]]:
					d.bad = fmt.Sprintf("directive names unknown analyzer %q", fields[0])
				case len(fields) == 1:
					d.bad = fmt.Sprintf("directive for %q is missing the mandatory reason", fields[0])
				default:
					d.analyzer = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// Filter applies the //fhlint:ignore directives found in files to
// diags: a diagnostic is dropped when a well-formed directive naming
// its analyzer sits on the same line or the line directly above it.
// Malformed directives suppress nothing and are appended as
// DirectiveAnalyzer diagnostics, so a typoed suppression fails the
// lint run instead of silently doing nothing.
func Filter(fset *token.FileSet, files []*ast.File, known map[string]bool, diags []Diagnostic) []Diagnostic {
	kept, _ := filterDetailed(fset, files, known, diags)
	return kept
}

// filterDetailed is Filter keeping both sides of the split: the
// surviving diagnostics (plus malformed-directive findings) and the
// ones a directive suppressed.
func filterDetailed(fset *token.FileSet, files []*ast.File, known map[string]bool, diags []Diagnostic) (kept, suppressed []Diagnostic) {
	dirs := parseDirectives(fset, files, known)
	if len(dirs) == 0 {
		return diags, nil
	}
	// (file, line, analyzer) pairs a directive covers.
	type key struct {
		file     string
		line     int
		analyzer string
	}
	covered := make(map[key]bool)
	for _, d := range dirs {
		if d.bad != "" {
			continue
		}
		covered[key{d.file, d.line, d.analyzer}] = true
		covered[key{d.file, d.line + 1, d.analyzer}] = true
	}
	kept = diags[:0]
	for _, dg := range diags {
		if covered[key{dg.Pos.Filename, dg.Pos.Line, dg.Analyzer}] {
			suppressed = append(suppressed, dg)
			continue
		}
		kept = append(kept, dg)
	}
	for _, d := range dirs {
		if d.bad == "" {
			continue
		}
		kept = append(kept, Diagnostic{
			Pos:      fset.Position(d.pos),
			Analyzer: DirectiveAnalyzer,
			Message:  d.bad,
		})
	}
	return kept, suppressed
}

// pkgPathOf resolves the package an identifier's selector qualifies,
// e.g. the "time" in time.Now. It returns "" when x is not a package
// name.
func pkgPathOf(info *types.Info, x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// isBuiltin reports whether the call's callee is the named builtin
// (append, new, copy, ...).
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}
