// Package memosafety is an analysistest fixture: each // want line
// seeds a mutation of a shared memoized slice (the contract of
// dag.Graph's Shared* accessors) that the memosafety analyzer must
// catch. The local Graph type stands in for dag.Graph: matching is by
// accessor method name.
package memosafety

import "sort"

type Graph struct{}

func (g *Graph) SharedDescendantValues() []float64        { return nil }
func (g *Graph) SharedTypedDescendantValues() [][]float64 { return nil }
func (g *Graph) SharedDifferentTypeDistances() []int32    { return nil }

func mutateDirect(g *Graph) {
	d := g.SharedDescendantValues()
	d[0] = 1             // want `write into shared memoized slice from SharedDescendantValues`
	sort.Float64s(d)     // want `in-place sort\.Float64s of shared memoized slice`
	_ = append(d, 2)     // want `append reusing shared memoized slice`
	copy(d, []float64{}) // want `copy into shared memoized slice`
}

func mutateRow(g *Graph) {
	typed := g.SharedTypedDescendantValues()
	row := typed[0]
	row[1] = 3    // want `write into shared memoized slice`
	typed[2][0]++ // want `write into shared memoized slice`
}

func mutateAlias(g *Graph) {
	d := g.SharedDifferentTypeDistances()
	alias := d
	alias[0] = 7 // want `write into shared memoized slice`
}

func mutateUnbound(g *Graph) {
	sort.Float64s(g.SharedDescendantValues()) // want `in-place sort\.Float64s of shared memoized slice`
}

// copyFirst is the documented contract: callers that perturb values
// copy first, so nothing below is flagged.
func copyFirst(g *Graph) []float64 {
	own := append([]float64(nil), g.SharedDescendantValues()...)
	own[0] = 1
	sort.Float64s(own)
	return own
}

// readOnly consumption of shared slices is of course fine.
func readOnly(g *Graph) float64 {
	d := g.SharedDescendantValues()
	var sum float64
	for _, v := range d {
		sum += v
	}
	return sum
}
