// Package seedflow is an analysistest fixture: each // want line seeds
// a literal-seed call the seedflow analyzer must catch.
package seedflow

import "math/rand"

type Config struct{ Seed int64 }

func build(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func deriveStream(rootSeed, stream int64) *rand.Rand {
	return build(rootSeed + stream)
}

func literalToStdlib() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `integer literal passed as seed parameter "seed" of rand\.NewSource`
}

func literalToOwnFunc() *rand.Rand {
	return build(-7) // want `integer literal passed as seed parameter "seed" of build`
}

// threaded is the sanctioned pattern: the seed flows from a config
// struct, and a struct literal is where a literal seed may live.
func threaded() *rand.Rand {
	cfg := Config{Seed: 42}
	return build(cfg.Seed)
}

func repeat(count int, seed int64) int64 { return seed * int64(count) }

// notASeed is fine: literals bound to parameters not named like a
// seed (count here, n in Intn) are no business of this analyzer, and
// non-literal seed expressions derived from a root seed are the whole
// point.
func notASeed(root int64) int64 {
	r := build(root + 1)
	r.Intn(10)
	return repeat(3, root)
}
