// Package unusedwrite is an analysistest fixture: each // want line
// seeds a lost write to a struct copy the unusedwrite analyzer must
// catch.
package unusedwrite

type item struct {
	done bool
	n    int
}

// markAll looks like it marks every item, but the range value is a
// copy: the writes vanish at the end of each iteration.
func markAll(items []item) {
	for _, it := range items {
		it.done = true // want `write to field done of range-value copy "it" is never read`
	}
}

// byValueParam writes a field of a by-value parameter and returns:
// the caller can never observe it.
func byValueParam(it item) {
	it.n = 5 // want `write to field n of copy "it" is never read`
}

// readBack is fine: the copy is read after the write, so the write is
// observable (local accumulation).
func readBack(items []item) int {
	total := 0
	for _, it := range items {
		it.n = 2 * it.n
		total += it.n
	}
	return total
}

// throughPointer is fine: the write lands in the shared element.
func throughPointer(items []*item) {
	for _, it := range items {
		it.done = true
	}
}

// addressTaken is fine: an alias may observe the write later.
func addressTaken(items []item) *item {
	var last *item
	for _, it := range items {
		it.done = true
		last = &it
	}
	return last
}

// loopCarried is fine: the write to the outer struct is read by the
// lexically earlier use on the next iteration.
func loopCarried(rounds int) int {
	var acc item
	for i := 0; i < rounds; i++ {
		acc.n = acc.n + i
	}
	return acc.n
}
