// Package errsink seeds dropped-error patterns on durability and
// network types for the errsink analyzer.
package errsink

import (
	"io"
	"net"
	"os"
)

func bareCall(f *os.File) {
	f.Close() // want "File.Close error is discarded"
}

func bareSync(f *os.File) {
	f.Sync() // want "File.Sync error is discarded"
}

func deferredClose(f *os.File) {
	defer f.Close() // want "deferred File.Close drops its error"
}

func goClose(f *os.File) {
	go f.Close() // want "go File.Close discards its error"
}

func blankAssign(f *os.File) {
	_ = f.Close() // want "File.Close error is discarded via _"
}

func blankPairAssign(f *os.File, b []byte) {
	_, _ = f.Write(b) // want "File.Write error is discarded via _"
}

func assignedNeverRead(f *os.File) {
	err := f.Sync()
	if err != nil {
		return
	}
	err = f.Close() // want "File.Close error is assigned to err but never checked"
}

func checkedIsClean(f *os.File) error {
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}

func checkedLaterIsClean(f *os.File) error {
	err := f.Sync()
	return err
}

func tcpConnClose(c *net.TCPConn) {
	c.Close() // want "TCPConn.Close error is discarded"
}

func interfaceCloseIsBestEffort(rc io.ReadCloser) {
	// Interface receivers are deliberately not sinks.
	defer rc.Close()
}

func netInterfaceCloseIsBestEffort(c net.Conn) {
	c.Close()
}

func suppressedReadOnlyClose(f *os.File) {
	//fhlint:ignore errsink file opened read-only in this fixture; close cannot lose data
	f.Close()
}
