// Package durorder seeds durability-ordering violations for the
// durorder analyzer: write -> sync -> rename -> dir-sync.
package durorder

import "os"

// GoodCommit is the canonical safe sequence: content written, content
// synced, renamed into place, directory entry synced.
func GoodCommit(f, dir *os.File, a, b string) {
	f.Write([]byte("x"))
	f.Sync()
	os.Rename(a, b)
	dir.Sync()
}

func RenameUnsyncedContent(dir *os.File, a, b string) {
	os.Rename(a, b) // want "rename before the renamed content was synced"
	dir.Sync()
}

func RenameNoDirSync(f *os.File, a, b string) {
	f.Write([]byte("x"))
	f.Sync()
	os.Rename(a, b) // want "rename is not followed by a sync"
}

func TruncateNoSync(f *os.File) {
	f.Truncate(0) // want "truncate is not followed by a sync"
}

func TruncateThenSync(f *os.File) {
	f.Truncate(0)
	f.Sync()
}

func WriteNoSync(f *os.File) {
	f.Write([]byte("x")) // want "file write is never followed by a sync"
}

func WriteFileNoSync(path string) {
	os.WriteFile(path, []byte("x"), 0o644) // want "file write is never followed by a sync"
}

// appendFrame is a helper: its write obligation is checked in the
// roots that inline it, not here.
func appendFrame(f *os.File, b []byte) {
	f.Write(b)
}

func CommitViaHelper(f, dir *os.File, a, b string) {
	appendFrame(f, []byte("x"))
	f.Sync()
	os.Rename(a, b)
	dir.Sync()
}

func LeakViaHelper(f *os.File) {
	appendFrame(f, []byte("x")) // want "file write is never followed by a sync"
}

// orphanTruncate is unexported but has no in-package caller, so it is
// a root and is checked directly.
func orphanTruncate(f *os.File) {
	f.Truncate(4) // want "truncate is not followed by a sync"
}

// ConditionalSyncCounts: a sync under a branch satisfies the ordering
// (the batch-fsync policy is exactly that shape).
func ConditionalSyncCounts(f *os.File, batched bool, a, b string) {
	f.Write([]byte("x"))
	if batched {
		f.Sync()
	}
	os.Rename(a, b)
	f.Sync()
}

func SuppressedScratchWrite(f *os.File) {
	//fhlint:ignore durorder scratch file in fixtures; durability not required
	f.Write([]byte("x"))
}
