// Package nilness is an analysistest fixture: each // want line seeds
// a guaranteed nil dereference the nilness analyzer must catch.
package nilness

type node struct {
	next *node
	val  int
}

func derefField(n *node) int {
	if n == nil {
		return n.val // want `field access through n, which is nil on this path`
	}
	return n.val
}

func derefStar(n *node) node {
	if nil == n {
		return *n // want `dereference of n, which is nil on this path`
	}
	return *n
}

func indexNilSlice(xs []int) int {
	if xs == nil {
		return xs[0] // want `index of xs, which is a nil slice on this path`
	}
	return xs[0]
}

func callNilFunc(f func() int) int {
	if f == nil {
		return f() // want `call of f, which is a nil func on this path`
	}
	return f()
}

// guarded is fine: the branch reassigns before use, the common
// default-filling idiom.
func guarded(n *node) int {
	if n == nil {
		n = &node{val: 1}
	}
	return n.val
}

// lenOfNil is fine: len of a nil slice is legal.
func lenOfNil(xs []int) int {
	if xs == nil {
		return len(xs)
	}
	return len(xs)
}
