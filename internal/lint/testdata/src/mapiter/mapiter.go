// Package mapiter is an analysistest fixture: each // want line seeds
// an order-sensitive map iteration the mapiter analyzer must catch.
package mapiter

import (
	"container/heap"
	"sort"
)

type sched struct{}

func (sched) Pick(id int) {}

type intHeap []int

func (h intHeap) Len() int           { return len(h) }
func (h intHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x any)        { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

func keysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append inside range over map without a sort`
	}
	return keys
}

// keysSorted is the sanctioned collect-then-sort pattern: the append
// destination is sorted in the same statement list after the loop.
func keysSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func send(m map[int]int, ch chan<- int) {
	for _, v := range m {
		ch <- v // want `channel send inside range over map`
	}
}

func pick(m map[int]int, s sched) {
	for id := range m {
		s.Pick(id) // want `Pick called inside range over map`
	}
}

func pushHeap(m map[int]int, h *intHeap) {
	for _, v := range m {
		heap.Push(h, v) // want `heap\.Push called inside range over map`
	}
}

// sliceAccumulation is fine: ranging a slice is deterministic.
func sliceAccumulation(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// mapToMap is fine: writing another map is order-independent.
func mapToMap(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
