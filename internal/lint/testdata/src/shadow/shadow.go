// Package shadow is an analysistest fixture: each // want line seeds a
// stale-value shadowing bug the shadow analyzer must catch.
package shadow

import "strconv"

// parseLast means to return the last parsed value, but the := inside
// the loop declares fresh variables, so the function always returns
// the zero values: the archetypal shadow bug.
func parseLast(ss []string) (int, error) {
	var last int
	var err error
	for _, s := range ss {
		if s != "" {
			last, err := strconv.Atoi(s) // want `declaration of "last" shadows` `declaration of "err" shadows`
			_ = last
			_ = err
		}
	}
	return last, err
}

// reassignedBeforeRead is fine: the outer err is freshly assigned
// after the shadowing scope, so no read can observe a stale value —
// the `if v, err := ...` idiom must not be flagged.
func reassignedBeforeRead(ss []string) error {
	var err error
	for _, s := range ss {
		if v, err := strconv.Atoi(s); err == nil {
			_ = v
		}
	}
	err = touch()
	return err
}

// differentType is fine: shadowing with a different type is almost
// always intentional narrowing.
func differentType(v any) string {
	if s, ok := v.(string); ok {
		v := s + "!"
		return v
	}
	_ = v
	return ""
}

func touch() error { return nil }
