// Package tickstop seeds the ticker/timer lifecycle bugs the
// tickstop analyzer exists to catch.
package tickstop

import "time"

func leakedTicker() {
	t := time.NewTicker(time.Second) // want "never stopped"
	<-t.C
}

func leakedTimer() {
	t := time.NewTimer(time.Second) // want "never stopped"
	<-t.C
}

func stoppedButNotOnAllExits(stop bool) {
	t := time.NewTicker(time.Second) // want "not stopped on all exits"
	if stop {
		return // leaks t
	}
	<-t.C
	t.Stop()
}

func deferredStopIsClean() {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	<-t.C
}

func straightLineStopIsClean() {
	t := time.NewTimer(time.Second)
	<-t.C
	t.Stop()
}

func escapingTickerIsCallersProblem() *time.Ticker {
	t := time.NewTicker(time.Second)
	return t
}

func passedAlongTickerIsCallersProblem(take func(*time.Ticker)) {
	t := time.NewTicker(time.Second)
	take(t)
}

func afterInLoop(done chan struct{}) {
	for {
		select {
		case <-time.After(time.Second): // want "time.After in a loop"
		case <-done:
			return
		}
	}
}

func afterInRangeLoop(work []int) {
	for range work {
		<-time.After(time.Millisecond) // want "time.After in a loop"
	}
}

func afterOutsideLoopIsClean() {
	<-time.After(time.Second)
}

func tickLeaks() {
	//fhlint:ignore tickstop demonstrating a reasoned suppression in fixtures
	<-time.Tick(time.Second)
	<-time.Tick(time.Second) // want "time.Tick has no Stop"
}
