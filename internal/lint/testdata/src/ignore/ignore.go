// Package ignore is an analysistest fixture for the //fhlint:ignore
// suppression filter, run under the detrand analyzer: directives must
// be honored (line above and same line), analyzer-scoped, and carry a
// mandatory reason.
package ignore

import "time"

func suppressedAbove() time.Time {
	//fhlint:ignore detrand fixture: directive on the line above covers the finding
	return time.Now()
}

func suppressedSameLine() time.Time {
	return time.Now() //fhlint:ignore detrand fixture: trailing directives also count
}

func wrongAnalyzer() time.Time {
	//fhlint:ignore mapiter fixture: directives are analyzer-scoped, so this does not cover detrand
	return time.Now() // want `wall-clock read time\.Now`
}

func missingReason() time.Time {
	/* want `directive for .detrand. is missing the mandatory reason` */ //fhlint:ignore detrand
	return time.Now()                                                    // want `wall-clock read time\.Now`
}

func unknownAnalyzer() time.Time {
	/* want `directive names unknown analyzer .nosuch.` */ //fhlint:ignore nosuch misspelled analyzers must not silently suppress
	return time.Now()                                      // want `wall-clock read time\.Now`
}
