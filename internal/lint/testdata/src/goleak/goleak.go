// Package goleak seeds unjoined-goroutine patterns for the goleak
// analyzer.
package goleak

import "sync"

func work() {}

func namedSpawn() {
	go work() // want "spawned through a named function"
}

func noSignal() {
	go func() { // want "signals no completion"
		work()
	}()
}

func doneWithoutWait() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "never calls wg.Wait"
		defer wg.Done()
		work()
	}()
}

func doneWithWait() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func doneViaParamWithWait() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func(w *sync.WaitGroup) {
		defer w.Done()
		work()
	}(&wg)
	wg.Wait()
}

func doneViaParamWithoutWait() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func(w *sync.WaitGroup) { // want "never calls wg.Wait"
		defer w.Done()
		work()
	}(&wg)
}

func sendWithoutReceive() {
	done := make(chan struct{})
	go func() { // want "never receives from it"
		defer close(done)
		work()
	}()
}

func sendWithReceive() {
	errc := make(chan error, 1)
	go func() {
		errc <- nil
	}()
	<-errc
}

func sendWithSelectReceive(quit chan struct{}) {
	errc := make(chan error, 1)
	go func() {
		errc <- nil
	}()
	select {
	case <-errc:
	case <-quit:
	}
}

func sendWithRangeReceive() {
	out := make(chan int)
	go func() {
		defer close(out)
		out <- 1
	}()
	for range out {
	}
}

func escapedChannelIsJoinedElsewhere(collect func(<-chan int)) {
	out := make(chan int, 1)
	go func() {
		out <- 1
	}()
	collect(out)
}

func escapedWaitGroupIsJoinedElsewhere(park func(*sync.WaitGroup)) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	park(&wg)
}

type pool struct {
	wg sync.WaitGroup
}

func (p *pool) fieldWaitGroupIsNotLocal() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		work()
	}()
}

func suppressedNamedSpawn() {
	//fhlint:ignore goleak runtime-managed helper, joined by process exit in fixtures
	go work()
}
