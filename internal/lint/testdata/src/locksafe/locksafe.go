// Package locksafe seeds mutex-discipline bugs for the locksafe
// analyzer: inconsistent guarding, copied locks, mixed atomic/plain
// access.
package locksafe

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu   sync.Mutex
	n    int
	hits atomic.Int64
}

// Inc establishes the association: n is accessed under mu here, so
// every other access of n must hold mu too.
func (c *counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) Peek() int {
	return c.n // want "n is accessed without holding mu"
}

// Add holds mu across the helper call, so bump is rescued by the
// call graph: every in-package call site holds mu.
func (c *counter) Add(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump(d)
}

func (c *counter) bump(d int) {
	c.n += d
}

// Atomics ARE the synchronization; no guard needed.
func (c *counter) Hit() {
	c.hits.Add(1)
}

func (c *counter) Racy() int {
	//fhlint:ignore locksafe approximate read is acceptable in this fixture
	return c.n
}

// Copied locks.

func (c counter) Snapshot() int { // want "method Snapshot copies its lock-containing receiver"
	return 0
}

func consume(c counter) {} // want "parameter of consume passes a lock-containing value by copy"

func deref(p *counter) int {
	v := *p // want "assignment copies a lock-containing value"
	return v.n
}

func alias(p *counter) *counter {
	q := p // pointer copy: clean
	return q
}

// Package-level guarding domain.

var (
	regMu    sync.Mutex
	registry map[string]int
)

func Register(name string) {
	regMu.Lock()
	defer regMu.Unlock()
	if registry == nil {
		registry = map[string]int{}
	}
	registry[name]++
}

func Lookup(name string) int {
	return registry[name] // want "registry is accessed without holding regMu"
}

// Mixed atomic/plain access.

type flags struct {
	ready int32
}

func (f *flags) set() {
	atomic.StoreInt32(&f.ready, 1)
}

func (f *flags) peek() int32 {
	return f.ready // want "ready mixes plain access with sync/atomic operations"
}

// A field never accessed under a lock has no inferred guard: clean.

type plain struct {
	mu sync.Mutex
	id string
}

func (p *plain) ID() string { return p.id }
