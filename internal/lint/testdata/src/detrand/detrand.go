// Package detrand is an analysistest fixture: each // want line seeds
// a determinism bug the detrand analyzer must catch.
package detrand

import (
	"math/rand"
	"time"
)

func wallClock() int64 {
	t := time.Now()    // want `wall-clock read time\.Now`
	d := time.Since(t) // want `wall-clock read time\.Since`
	return int64(d)
}

func globalSource() int {
	r := new(rand.Rand) // want `new\(rand\.Rand\) is an unseeded generator`
	_ = r
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle draws from the process-global source`
	return rand.Intn(10)               // want `rand\.Intn draws from the process-global source`
}

// seeded is the sanctioned pattern: randomness flows from an explicit
// seeded generator, so nothing below is flagged.
func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// simulatedTime is fine: arithmetic on time values read from config is
// not a wall-clock read.
func simulatedTime(deadline time.Time) time.Time {
	return deadline.Add(3 * time.Second)
}
