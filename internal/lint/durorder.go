package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Durorder enforces the WAL's durability ordering as an effect-
// sequence contract over the dataflow summaries. The crash-safety
// argument of the journal (DESIGN.md, "Durability") is an ordering
// argument: file content must be synced before the rename that links
// it into the log, the rename must be followed by a directory sync
// (the commit point), and a truncation repair must be synced before
// anyone trusts the shorter file. The analyzer classifies file-system
// calls into effects (write, sync, truncate, rename), inlines
// same-package helper summaries at their call sites, and checks each
// call-graph ROOT — an exported function, or an unexported one no
// in-package caller reaches — against the rules:
//
//	R1  a rename must have an earlier sync   (content durable first)
//	R2  a rename must have a later sync      (directory commit point)
//	R3  a truncate must have a later sync    (repair durable)
//	R4  a write must have a later sync       (no fire-and-forget path)
//
// Known false negatives, accepted by design: effects under branches
// count as present (a conditional sync satisfies the rule — the batch
// fsync policy is exactly that); cross-package calls are opaque;
// recursion contributes nothing on the back edge; calls through
// function-typed variables resolve to no callee (their effects appear
// where the literal is defined, which for this module's closures is
// the correct source position anyway).
var Durorder = &Analyzer{
	Name: "durorder",
	Doc: "enforce write -> sync -> rename -> dir-sync ordering on the WAL and snapshot " +
		"paths via per-function effect summaries",
	Run:     runDurorder,
	Applies: durorderApplies,
}

func durorderApplies(pkgPath string) bool {
	return pkgPath == "fhs/internal/service/wal"
}

// classifyFileEffect maps one call to its durability effects.
func classifyFileEffect(info *types.Info, call *ast.CallExpr, callee *types.Func) []Effect {
	if callee == nil || callee.Pkg() == nil {
		return nil
	}
	pkg, name := callee.Pkg().Path(), callee.Name()
	sig, _ := callee.Type().(*types.Signature)
	switch {
	case pkg == "os" && name == "Rename":
		return []Effect{{Kind: "rename", Pos: call.Pos()}}
	case pkg == "os" && name == "WriteFile":
		return []Effect{{Kind: "write", Pos: call.Pos()}}
	case pkg == "os" && sig != nil && sig.Recv() != nil && isPkgType(sig.Recv().Type(), "os", "File"):
		switch name {
		case "Write", "WriteString", "WriteAt":
			return []Effect{{Kind: "write", Pos: call.Pos()}}
		case "Sync":
			return []Effect{{Kind: "sync", Pos: call.Pos()}}
		case "Truncate":
			return []Effect{{Kind: "truncate", Pos: call.Pos()}}
		}
	}
	return nil
}

func runDurorder(pass *Pass) error {
	flow := NewFlow(pass)
	sum := flow.NewSummarizer(func(call *ast.CallExpr, callee *types.Func) []Effect {
		return classifyFileEffect(pass.Info, call, callee)
	})
	type finding struct {
		pos token.Pos
		msg string
	}
	seen := map[finding]bool{}
	report := func(pos token.Pos, msg string) {
		f := finding{pos, msg}
		if seen[f] {
			return
		}
		seen[f] = true
		pass.Reportf(pos, "%s", msg)
	}
	for _, fn := range flow.Funcs() {
		// Only roots: a helper's obligations are checked in the context
		// of the entry points that inline it, where the surrounding
		// syncs are visible.
		if !fn.Obj.Exported() && flow.HasLocalCallers(fn.Obj) {
			continue
		}
		effects := sum.FuncEffects(fn)
		for i, e := range effects {
			switch e.Kind {
			case "rename":
				if !hasKindBefore(effects, i, "sync") {
					report(e.Pos, "rename before the renamed content was synced; a crash can commit an incomplete file")
				}
				if !hasKindAfter(effects, i, "sync") {
					report(e.Pos, "rename is not followed by a sync; the directory entry (the commit point) is not durable")
				}
			case "truncate":
				if !hasKindAfter(effects, i, "sync") {
					report(e.Pos, "truncate is not followed by a sync; the repair may not survive a crash")
				}
			case "write":
				if !hasKindAfter(effects, i, "sync") {
					report(e.Pos, "file write is never followed by a sync on this path")
				}
			}
		}
	}
	return nil
}

// hasKindBefore reports whether kind occurs at an index strictly
// before i. Inlined callee effects share the call site's position but
// keep their relative order, so index order — not raw positions — is
// the sequence the rules run over.
func hasKindBefore(effects []Effect, i int, kind string) bool {
	for j := 0; j < i; j++ {
		if effects[j].Kind == kind {
			return true
		}
	}
	return false
}

// hasKindAfter reports whether kind occurs at an index strictly after i.
func hasKindAfter(effects []Effect, i int, kind string) bool {
	for j := i + 1; j < len(effects); j++ {
		if effects[j].Kind == kind {
			return true
		}
	}
	return false
}
