package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseOne parses a single synthetic file for Filter-level tests.
func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, []*ast.File{f}
}

// diagAt builds a synthetic diagnostic at a line of x.go.
func diagAt(analyzer string, line int) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: "x.go", Line: line, Column: 1},
		Analyzer: analyzer,
		Message:  "synthetic finding",
	}
}

var testKnown = map[string]bool{"detrand": true, "mapiter": true}

func TestFilterHonorsDirective(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() {
	//fhlint:ignore detrand reasons are written down
	_ = 1
	_ = 2 //fhlint:ignore detrand trailing form works too
}
`)
	// Line 4 is the directive, line 5 the statement below it, line 6
	// the trailing-directive statement.
	kept := Filter(fset, files, testKnown, []Diagnostic{
		diagAt("detrand", 5),
		diagAt("detrand", 6),
	})
	if len(kept) != 0 {
		t.Fatalf("want all diagnostics suppressed, kept %v", kept)
	}
}

func TestFilterIsAnalyzerScoped(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() {
	//fhlint:ignore detrand only detrand is covered here
	_ = 1
}
`)
	kept := Filter(fset, files, testKnown, []Diagnostic{
		diagAt("detrand", 5),
		diagAt("mapiter", 5),
	})
	if len(kept) != 1 || kept[0].Analyzer != "mapiter" {
		t.Fatalf("want only the mapiter diagnostic kept, got %v", kept)
	}
}

func TestFilterRequiresReason(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() {
	//fhlint:ignore detrand
	_ = 1
}
`)
	kept := Filter(fset, files, testKnown, []Diagnostic{diagAt("detrand", 5)})
	if len(kept) != 2 {
		t.Fatalf("want the finding kept plus a directive error, got %v", kept)
	}
	var sawOriginal, sawDirectiveError bool
	for _, d := range kept {
		switch d.Analyzer {
		case "detrand":
			sawOriginal = true
		case DirectiveAnalyzer:
			sawDirectiveError = true
			if !strings.Contains(d.Message, "missing the mandatory reason") {
				t.Errorf("directive error message = %q", d.Message)
			}
		}
	}
	if !sawOriginal || !sawDirectiveError {
		t.Fatalf("reasonless directive must suppress nothing and be reported itself; got %v", kept)
	}
}

func TestFilterRejectsUnknownAnalyzer(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() {
	//fhlint:ignore detrnd typo in the analyzer name
	_ = 1
}
`)
	kept := Filter(fset, files, testKnown, []Diagnostic{diagAt("detrand", 5)})
	if len(kept) != 2 {
		t.Fatalf("want finding + unknown-analyzer error, got %v", kept)
	}
	found := false
	for _, d := range kept {
		if d.Analyzer == DirectiveAnalyzer && strings.Contains(d.Message, `unknown analyzer "detrnd"`) {
			found = true
		}
	}
	if !found {
		t.Fatalf("want unknown-analyzer directive error, got %v", kept)
	}
}

func TestFilterDoesNotReachFurtherLines(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() {
	//fhlint:ignore detrand a directive covers its line and the next, not the whole block
	_ = 1
	_ = 2
}
`)
	kept := Filter(fset, files, testKnown, []Diagnostic{diagAt("detrand", 6)})
	if len(kept) != 1 {
		t.Fatalf("line 6 is outside the directive's reach; want the diagnostic kept, got %v", kept)
	}
}

func TestFilterIgnoresEmptyDirectiveToken(t *testing.T) {
	// "//fhlint:ignoreXYZ" is some other token, not a directive: no
	// suppression and no directive error.
	fset, files := parseOne(t, `package p

func f() {
	//fhlint:ignoreXYZ detrand this is not our directive
	_ = 1
}
`)
	kept := Filter(fset, files, testKnown, []Diagnostic{diagAt("detrand", 5)})
	if len(kept) != 1 || kept[0].Analyzer != "detrand" {
		t.Fatalf("want the diagnostic kept with no directive error, got %v", kept)
	}
}

// TestFilterCoversAllSuiteAnalyzers: every registered analyzer —
// including the dataflow five — must be suppressible by name, and a
// directive for one analyzer must never absorb another's finding.
// Runs against filterDetailed so the suppressed side (what -json
// reports) is pinned too.
func TestFilterCoversAllSuiteAnalyzers(t *testing.T) {
	suite := Analyzers()
	known := analyzerNames(suite)
	for i, a := range suite {
		other := suite[(i+1)%len(suite)].Name
		src := "package p\n\nfunc f() {\n\t//fhlint:ignore " + a.Name + " reasoned suppression for this test\n\t_ = 1\n}\n"
		fset, files := parseOne(t, src)
		kept, suppressed := filterDetailed(fset, files, known, []Diagnostic{
			diagAt(a.Name, 5),
			diagAt(other, 5),
		})
		if len(suppressed) != 1 || suppressed[0].Analyzer != a.Name {
			t.Errorf("%s: directive suppressed %v, want exactly its own finding", a.Name, suppressed)
		}
		if len(kept) != 1 || kept[0].Analyzer != other {
			t.Errorf("%s: directive must not absorb %s's finding; kept %v", a.Name, other, kept)
		}
	}
}

// TestFixturesExerciseSuppression: each dataflow analyzer's fixture
// carries at least one //fhlint:ignore'd finding, so suppression
// semantics are covered end-to-end (analyzer -> directive -> filter),
// not just at the Filter layer.
func TestFixturesExerciseSuppression(t *testing.T) {
	for _, tc := range []struct {
		a   *Analyzer
		dir string
	}{
		{Locksafe, "locksafe"},
		{Durorder, "durorder"},
		{Errsink, "errsink"},
		{Goleak, "goleak"},
		{Tickstop, "tickstop"},
	} {
		pkg, err := LoadFixture("testdata/src/" + tc.dir)
		if err != nil {
			t.Fatalf("%s: %v", tc.dir, err)
		}
		_, suppressed, err := RunDetailed(pkg, []*Analyzer{tc.a}, false)
		if err != nil {
			t.Fatalf("%s: %v", tc.dir, err)
		}
		if len(suppressed) == 0 {
			t.Errorf("%s fixture has no suppressed finding; add an //fhlint:ignore case", tc.dir)
		}
	}
}
