package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Seedflow forbids integer literals as seed arguments in production
// code. Seeds must flow through configuration structs (exp.Options,
// bench.Scale, fault.Config, MQBOptions.Seed, ...) so that one root
// seed reproducibly derives every stream in a run; a literal buried in
// a call site forks the seed space invisibly and breaks the
// "fingerprints are a function of (seed, scale)" contract the
// benchmark and fault subsystems rely on.
//
// Detection is type-driven: any call argument bound to a parameter
// whose name contains "seed" (rand.NewSource's seed, rand.NewPCG's
// seed1/seed2, this module's own seed parameters) that is an integer
// literal — optionally negated — is reported. Struct literals like
// exp.Options{Seed: 42} are the sanctioned pattern and are not
// flagged. Tests are outside the driver's scope by construction, and
// cmd/fhgen is exempt: its whole job is minting workloads from a
// user-supplied or default literal seed.
var Seedflow = &Analyzer{
	Name: "seedflow",
	Doc: "forbid integer literals passed as seed arguments; seeds must flow through " +
		"config structs from a single root seed",
	Run:     runSeedflow,
	Applies: func(pkgPath string) bool { return pkgPath != "fhs/cmd/fhgen" },
}

func runSeedflow(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sig, ok := pass.Info.Types[call.Fun].Type.(*types.Signature)
			if !ok {
				return true
			}
			params := sig.Params()
			for i, arg := range call.Args {
				if i >= params.Len() {
					break
				}
				p := params.At(i)
				if sig.Variadic() && i == params.Len()-1 {
					break
				}
				if !strings.Contains(strings.ToLower(p.Name()), "seed") {
					continue
				}
				if lit, ok := intLiteral(arg); ok {
					pass.Reportf(lit.Pos(), "integer literal passed as seed parameter %q of %s; thread the seed through a config struct",
						p.Name(), calleeName(call))
				}
			}
			return true
		})
	}
	return nil
}

// intLiteral unwraps parens and unary +/- around an INT literal.
func intLiteral(e ast.Expr) (*ast.BasicLit, bool) {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && (u.Op == token.SUB || u.Op == token.ADD) {
		e = ast.Unparen(u.X)
	}
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return nil, false
	}
	return lit, true
}

// calleeName renders the called function for the diagnostic.
func calleeName(call *ast.CallExpr) string {
	return types.ExprString(ast.Unparen(call.Fun))
}
