package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Errsink flags dropped errors from durability- and network-path
// methods: Close, Sync, Flush and Write on *os.File, the concrete net
// connection types, and the module's own wal.Log and service.Journal.
// On these types an ignored error is (at best) a swallowed disk-full
// or connection-reset, and on the WAL path it is a silent durability
// loss — a Close error after a successful Sync can still mean the
// data never reached the platter.
//
// Dropped forms: a bare call statement, defer sink(), go sink(),
// assignment of the error position to _, and assignment to a local
// variable that is never read afterwards (def-use tracked through the
// function body). Interface-typed receivers (io.Closer, an HTTP
// response body) are deliberately NOT sinks: closing a read-side
// interface stream is routinely best-effort, and the analyzer's
// contract is "these concrete types must never lose an error", not
// "every Close is checked". The trade-off is a documented false
// negative: a *os.File stored into an io.Closer escapes the check.
var Errsink = &Analyzer{
	Name: "errsink",
	Doc: "forbid dropping the error of Close/Sync/Flush/Write on durability and network " +
		"types (*os.File, net conns, wal.Log, service.Journal)",
	Run:     runErrsink,
	Applies: errsinkApplies,
}

// errsinkScope covers the packages on the durability and load paths.
// Measurement CLIs (fhsim, fhbench, ...) read and report best-effort
// and stay out, mirroring detrand's scoping philosophy.
var errsinkScope = []string{
	"fhs/internal/service",
	"fhs/internal/load",
	"fhs/internal/bench",
	"fhs/cmd/fhd",
}

func errsinkApplies(pkgPath string) bool {
	for _, p := range errsinkScope {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// sinkMethods are the method names whose error results must not drop.
var sinkMethods = map[string]bool{"Close": true, "Sync": true, "Flush": true, "Write": true}

// errsinkCall reports whether call is a sink-method call on a sink type,
// returning the qualified description used in diagnostics.
func errsinkCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !sinkMethods[sel.Sel.Name] {
		return "", false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return "", false
	}
	recv := s.Recv()
	if t := recv; t != nil {
		u := t.Underlying()
		if p, ok := u.(*types.Pointer); ok {
			u = p.Elem().Underlying()
		}
		if types.IsInterface(u) {
			return "", false
		}
	}
	// The method must actually report an error.
	sig, ok := s.Obj().Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return "", false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if named, ok := last.(*types.Named); !ok || named.Obj().Name() != "error" || named.Obj().Pkg() != nil {
		return "", false
	}
	n := namedBase(recv)
	if n == nil {
		return "", false
	}
	obj := n.Obj()
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	isSink := (pkg == "os" && obj.Name() == "File") ||
		pkg == "net" ||
		(pkg == "fhs/internal/service/wal" && obj.Name() == "Log") ||
		(pkg == "fhs/internal/service" && obj.Name() == "Journal")
	if !isSink {
		return "", false
	}
	return obj.Name() + "." + sel.Sel.Name, true
}

func runErrsink(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkErrsink(pass, fd.Body)
		}
	}
	return nil
}

func checkErrsink(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if name, ok := errsinkCall(pass.Info, call); ok {
					pass.Reportf(call.Pos(), "%s error is discarded; on this type a dropped error is a lost write or close failure", name)
				}
			}
		case *ast.DeferStmt:
			if name, ok := errsinkCall(pass.Info, st.Call); ok {
				pass.Reportf(st.Call.Pos(), "deferred %s drops its error; close explicitly and join the error", name)
			}
		case *ast.GoStmt:
			if name, ok := errsinkCall(pass.Info, st.Call); ok {
				pass.Reportf(st.Call.Pos(), "go %s discards its error in a goroutine nobody observes", name)
			}
		case *ast.AssignStmt:
			checkErrsinkAssign(pass, body, st)
		}
		return true
	})
}

// checkErrsinkAssign handles `_ = f.Close()` and `err := f.Close()`
// where err is never read afterwards.
func checkErrsinkAssign(pass *Pass, body *ast.BlockStmt, asg *ast.AssignStmt) {
	if len(asg.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	name, ok := errsinkCall(pass.Info, call)
	if !ok {
		return
	}
	// The error is the last result, so the last LHS position.
	errLHS := ast.Unparen(asg.Lhs[len(asg.Lhs)-1])
	id, ok := errLHS.(*ast.Ident)
	if !ok {
		return
	}
	if id.Name == "_" {
		pass.Reportf(call.Pos(), "%s error is discarded via _", name)
		return
	}
	var obj types.Object
	if asg.Tok == token.DEFINE {
		obj = pass.Info.Defs[id]
	} else {
		obj = pass.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	if !usedAfter(pass.Info, body, obj, asg.End()) {
		pass.Reportf(call.Pos(), "%s error is assigned to %s but never checked", name, id.Name)
	}
}

// usedAfter reports whether obj is read (not merely reassigned) at any
// position after pos within body.
func usedAfter(info *types.Info, body ast.Node, obj types.Object, pos token.Pos) bool {
	lhs := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, l := range asg.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok {
				lhs[id] = true
			}
		}
		return true
	})
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || lhs[id] || id.Pos() <= pos {
			return true
		}
		if info.Uses[id] == obj {
			used = true
		}
		return true
	})
	return used
}
