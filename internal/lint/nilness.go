package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Nilness is a conservative, stdlib-only subset of
// golang.org/x/tools/go/analysis/passes/nilness (which needs SSA and
// therefore x/tools; this environment builds without a module proxy).
//
// It reports the one shape the full pass most often catches in
// practice: inside the taken branch of `if x == nil`, a use of x that
// is guaranteed to panic — dereferencing or selecting through a nil
// pointer, indexing a nil slice, or calling a nil function. If the
// branch reassigns x anywhere the variable is skipped entirely, so
// `if x == nil { x = default }` never triggers.
var Nilness = &Analyzer{
	Name: "nilness",
	Doc: "report guaranteed nil dereferences inside the taken branch of an `if x == nil` " +
		"check (stdlib subset of x/tools nilness)",
	Run: runNilness,
}

func runNilness(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifStmt, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			obj := nilComparedVar(pass.Info, ifStmt.Cond)
			if obj == nil {
				return true
			}
			if assignsTo(pass.Info, ifStmt.Body, obj) {
				return true
			}
			reportNilUses(pass, ifStmt.Body, obj)
			return true
		})
	}
	return nil
}

// nilComparedVar matches `x == nil` / `nil == x` where x is a plain
// variable of a nilable type, returning x's object.
func nilComparedVar(info *types.Info, cond ast.Expr) types.Object {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op != token.EQL {
		return nil
	}
	x := bin.X
	if isNilIdent(info, x) {
		x = bin.Y
	} else if !isNilIdent(info, bin.Y) {
		return nil
	}
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return nil
	}
	obj, ok := info.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	switch obj.Type().Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Signature:
		return obj
	}
	return nil
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// assignsTo reports whether body assigns to obj (including &obj, which
// allows writes through a pointer).
func assignsTo(info *types.Info, body ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && info.Uses[id] == obj {
					found = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && info.Uses[id] == obj {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// reportNilUses flags panicking uses of the known-nil obj in body.
func reportNilUses(pass *Pass, body ast.Node, obj types.Object) {
	isObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.Info.Uses[id] == obj
	}
	_, isPtr := obj.Type().Underlying().(*types.Pointer)
	_, isSlice := obj.Type().Underlying().(*types.Slice)
	_, isFunc := obj.Type().Underlying().(*types.Signature)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StarExpr:
			if isPtr && isObj(n.X) {
				pass.Reportf(n.Pos(), "dereference of %s, which is nil on this path", obj.Name())
			}
		case *ast.SelectorExpr:
			// Field reads through a nil pointer panic; method calls may
			// legally have a nil receiver, so only FieldVal selections
			// are flagged.
			if sel, ok := pass.Info.Selections[n]; ok && isPtr && isObj(n.X) && sel.Kind() == types.FieldVal {
				pass.Reportf(n.Pos(), "field access through %s, which is nil on this path", obj.Name())
				return false
			}
		case *ast.IndexExpr:
			if isSlice && isObj(n.X) {
				pass.Reportf(n.Pos(), "index of %s, which is a nil slice on this path", obj.Name())
			}
		case *ast.CallExpr:
			if isFunc && isObj(n.Fun) {
				pass.Reportf(n.Pos(), "call of %s, which is a nil func on this path", obj.Name())
			}
		}
		return true
	})
}
