package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// This file is the stdlib-only counterpart of
// golang.org/x/tools/go/analysis/analysistest: fixture packages under
// testdata/src/<name> annotate offending lines with
//
//	code // want "regexp" "another regexp"
//
// and AnalyzerTest checks that the analyzer's (suppression-filtered)
// diagnostics match the expectations exactly — every want must be hit
// by a diagnostic on its line, and every diagnostic must be claimed by
// a want. Fixtures therefore double as regression proofs: delete the
// analyzer's detection logic and the fixture fails with unmatched
// wants.

// TB is the subset of *testing.T the fixture runner needs, split out
// so the runner itself stays testable.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// fixtureChecker shares one FileSet and source importer across all
// fixture loads in a process, so the standard library is typechecked
// once instead of once per fixture.
var fixtureChecker = struct {
	once sync.Once
	fset *token.FileSet
	imp  types.Importer
}{}

func fixtureImporter() (*token.FileSet, types.Importer) {
	fixtureChecker.once.Do(func() {
		fixtureChecker.fset = token.NewFileSet()
		fixtureChecker.imp = importer.ForCompiler(fixtureChecker.fset, "source", nil)
	})
	return fixtureChecker.fset, fixtureChecker.imp
}

// LoadFixture parses and typechecks one fixture package directory.
func LoadFixture(dir string) (*Package, error) {
	fset, imp := fixtureImporter()
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no fixture files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	path := filepath.Base(dir)
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck fixture %s: %w", dir, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// wantRe matches one quoted expectation in a // want comment: either a
// double-quoted string (with \" escapes) or a raw backtick string.
var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// parseExpectations collects // want annotations from the fixture.
func parseExpectations(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Line-comment form `code // want "re"`, or block-comment
				// form `/* want "re" */` for lines whose line comment is
				// already taken by an //fhlint:ignore directive.
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 && strings.HasPrefix(c.Text, "/* want ") {
					idx = 0
				}
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(c.Text[idx:], -1) {
					unq := m[2] // raw backtick form
					if m[1] != "" || m[2] == "" {
						unq = strings.ReplaceAll(m[1], `\"`, `"`)
					}
					re, err := regexp.Compile(unq)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %w", pos.Filename, pos.Line, m[1], err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

// AnalyzerTest runs one analyzer over the fixture package in dir and
// checks its diagnostics against the // want annotations. The package
// path filter (Analyzer.Applies) is deliberately bypassed so fixtures
// exercise detection logic regardless of the driver's scoping policy;
// the //fhlint:ignore suppression filter IS applied, so suppression
// behavior is testable with fixtures too.
func AnalyzerTest(t TB, a *Analyzer, dir string) {
	t.Helper()
	pkg, err := LoadFixture(dir)
	if err != nil {
		t.Fatalf("%v", err)
	}
	diags, err := Run(pkg, []*Analyzer{a}, false)
	if err != nil {
		t.Fatalf("%v", err)
	}
	wants, err := parseExpectations(pkg.Fset, pkg.Files)
	if err != nil {
		t.Fatalf("%v", err)
	}
	sort.Slice(diags, func(i, j int) bool { return lessPosition(diags[i], diags[j]) })
	var unexpected []Diagnostic
	for _, d := range diags {
		claimed := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			unexpected = append(unexpected, d)
		}
	}
	for _, d := range unexpected {
		t.Errorf("%s: unexpected diagnostic: [%s] %s", posString(d.Pos), d.Analyzer, d.Message)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func posString(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}
