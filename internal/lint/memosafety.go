package lint

import (
	"go/ast"
	"go/types"
)

// Memosafety protects the per-graph memoized lookahead slices that
// internal/dag hands out through its Shared* accessors. Those slices
// are computed once under sync.Once and then read concurrently by
// every scheduler working the same graph (six per instance in the main
// figures); a single in-place mutation silently corrupts the lookahead
// data of every other scheduler and every later run on that graph.
//
// The analyzer taints values obtained from a memoized accessor
// (directly, through an alias, or by indexing a shared 2-D slice) and
// reports element writes, in-place sorts (sort.*, slices.Sort*),
// append reuse and copy-into. Taking a copy first — e.g.
// `own := append([]float64(nil), shared...)` — clears the taint, which
// is exactly the documented contract: callers that perturb values copy
// first.
var Memosafety = &Analyzer{
	Name: "memosafety",
	Doc: "forbid mutation (element writes, in-place sorts, append reuse) of slices obtained " +
		"from dag.Graph's memoized Shared* accessors; copy before perturbing",
	Run: runMemosafety,
}

// memoAccessors are the method names whose results are shared memoized
// state. Matching is by method name so analysistest fixtures can
// declare their own Graph type; in this module the names are unique to
// *dag.Graph.
var memoAccessors = map[string]bool{
	"SharedTypedDescendantValues":        true,
	"SharedOneStepTypedDescendantValues": true,
	"SharedDescendantValues":             true,
	"SharedDifferentTypeDistances":       true,
}

func runMemosafety(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkMemoFunc(pass, fn)
		}
	}
	return nil
}

// isMemoCall reports whether e is a direct call of a memoized accessor.
func isMemoCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && memoAccessors[sel.Sel.Name]
}

func checkMemoFunc(pass *Pass, fn *ast.FuncDecl) {
	// tainted maps objects currently holding shared memoized data to
	// the accessor that produced them (for the diagnostic). The walk
	// visits statements in source order, which is a sound approximation
	// for the straight-line aliasing this catches.
	tainted := map[types.Object]string{}

	obj := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if o := pass.Info.Uses[id]; o != nil {
			return o
		}
		return pass.Info.Defs[id]
	}

	// taintSource names the accessor behind e when e denotes shared
	// memoized data — a direct accessor call, a tainted variable, or an
	// element of one — and returns "" otherwise.
	var taintSource func(e ast.Expr) string
	taintSource = func(e ast.Expr) string {
		e = ast.Unparen(e)
		if isMemoCall(e) {
			return accessorName(e)
		}
		switch e := e.(type) {
		case *ast.Ident:
			if o := obj(e); o != nil {
				return tainted[o]
			}
			return ""
		case *ast.IndexExpr:
			return taintSource(e.X)
		}
		return ""
	}
	taintedExpr := func(e ast.Expr) bool { return taintSource(e) != "" }

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Writes through a tainted base: x[i] = v, x[i][j] = v.
			for _, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && taintedExpr(ix.X) {
					pass.Reportf(lhs.Pos(), "write into shared memoized slice from %s; copy before mutating", taintSource(ix.X))
				}
			}
			// Taint propagation: x := g.SharedX(), row := d[v], y := x.
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					o := obj(lhs)
					if o == nil {
						continue
					}
					if src := taintSource(n.Rhs[i]); src != "" {
						tainted[o] = src
					} else {
						delete(tainted, o)
					}
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok && taintedExpr(ix.X) {
				pass.Reportf(n.Pos(), "write into shared memoized slice from %s; copy before mutating", taintSource(ix.X))
			}
		case *ast.CallExpr:
			checkMemoCallSite(pass, n, taintedExpr)
		}
		return true
	})
}

// checkMemoCallSite flags calls that mutate tainted arguments in
// place: sort.*/slices.Sort*, append reuse, copy-into.
func checkMemoCallSite(pass *Pass, call *ast.CallExpr, taintedExpr func(ast.Expr) bool) {
	switch {
	case isBuiltin(pass.Info, call, "append"):
		if len(call.Args) > 0 && taintedExpr(call.Args[0]) {
			pass.Reportf(call.Pos(), "append reusing shared memoized slice as base; start from a fresh copy")
		}
	case isBuiltin(pass.Info, call, "copy"):
		if len(call.Args) == 2 && taintedExpr(call.Args[0]) {
			pass.Reportf(call.Pos(), "copy into shared memoized slice; allocate a destination instead")
		}
	default:
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		pkg := pkgPathOf(pass.Info, sel.X)
		if pkg != "sort" && pkg != "slices" {
			return
		}
		if len(call.Args) == 0 {
			return
		}
		if taintedExpr(call.Args[0]) {
			pass.Reportf(call.Pos(), "in-place %s.%s of shared memoized slice; sort a copy", pkgBase(pkg), sel.Sel.Name)
		}
	}
}

func pkgBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// accessorName names the accessor a direct memo call invokes.
func accessorName(e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "a Shared* accessor"
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && memoAccessors[sel.Sel.Name] {
		return sel.Sel.Name
	}
	return "a Shared* accessor"
}
