package lint

import (
	"path/filepath"
	"testing"
)

// TestAnalyzers drives every analyzer over its analysistest fixture.
// Each fixture seeds the bugs its analyzer exists to catch, so this
// test fails if an analyzer stops detecting (unmatched // want) or
// starts overreporting (unexpected diagnostic). It is part of the
// tier-1 `go test ./...` path on purpose: a lint regression fails the
// test suite, not just the lint job.
func TestAnalyzers(t *testing.T) {
	cases := []struct {
		a   *Analyzer
		dir string
	}{
		{Detrand, "detrand"},
		{Mapiter, "mapiter"},
		{Memosafety, "memosafety"},
		{Seedflow, "seedflow"},
		{Locksafe, "locksafe"},
		{Durorder, "durorder"},
		{Errsink, "errsink"},
		{Goleak, "goleak"},
		{Tickstop, "tickstop"},
		{Nilness, "nilness"},
		{Shadow, "shadow"},
		{Unusedwrite, "unusedwrite"},
		// The suppression-filter fixture runs under detrand: directives
		// must be honored, analyzer-scoped, and carry a reason.
		{Detrand, "ignore"},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			AnalyzerTest(t, tc.a, filepath.Join("testdata", "src", tc.dir))
		})
	}
}

// TestSuiteRegistry pins the suite composition: every analyzer is
// registered exactly once with a name and a doc, since //fhlint:ignore
// validation and CI output both key off the names.
func TestSuiteRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v missing name or doc", a)
		}
		if seen[a.Name] {
			t.Errorf("analyzer %q registered twice", a.Name)
		}
		seen[a.Name] = true
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
	for _, want := range []string{
		"detrand", "mapiter", "memosafety", "seedflow",
		"locksafe", "durorder", "errsink", "goleak", "tickstop",
		"nilness", "shadow", "unusedwrite",
	} {
		if !seen[want] {
			t.Errorf("suite is missing analyzer %q", want)
		}
	}
}

// TestRepoIsClean runs the full suite over the module exactly as
// cmd/fhlint does and fails on any finding. This is the source-level
// determinism gate: `go test ./...` (tier 1) fails if a nondeterminism
// pattern lands anywhere in production code, even before CI's
// dedicated lint job runs.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module; skipped in -short")
	}
	loader, err := SharedLoader(".")
	if err != nil {
		t.Fatalf("SharedLoader: %v", err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; loader is missing module packages", len(pkgs))
	}
	suite := Analyzers()
	for _, pkg := range pkgs {
		diags, err := Run(pkg, suite, true)
		if err != nil {
			t.Fatalf("Run(%s): %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}

// TestSharedLoaderCaches: the shared loader memoizes the typechecked
// package set per module root, so a second Load is a pure cache hit —
// the typecheck counter must not move. This is what keeps
// TestRepoIsClean paying the whole-module typecheck once per binary.
func TestSharedLoaderCaches(t *testing.T) {
	l1, err := SharedLoader(".")
	if err != nil {
		t.Fatalf("SharedLoader: %v", err)
	}
	if _, err := l1.Load("./internal/lint"); err != nil {
		t.Fatalf("Load: %v", err)
	}
	before := l1.TypecheckCount()
	if before == 0 {
		t.Fatal("TypecheckCount is 0 after a Load; the counter is not wired")
	}
	l2, err := SharedLoader(".")
	if err != nil {
		t.Fatalf("SharedLoader: %v", err)
	}
	if l2 != l1 {
		t.Fatal("SharedLoader returned a fresh loader for the same module root")
	}
	if _, err := l2.Load("./internal/lint"); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got := l2.TypecheckCount(); got != before {
		t.Errorf("second Load typechecked %d more packages; want a pure cache hit", got-before)
	}
}

// TestDetrandScope pins the driver-level scoping policy: detrand
// guards the determinism-critical packages and stays out of the
// benchmark/CLI layers that legitimately read the wall clock.
func TestDetrandScope(t *testing.T) {
	for _, in := range []string{
		"fhs/internal/core", "fhs/internal/dag", "fhs/internal/sim",
		"fhs/internal/fault", "fhs/internal/exp", "fhs/internal/multi", "fhs/internal/opt",
	} {
		if !Detrand.Applies(in) {
			t.Errorf("detrand should apply to %s", in)
		}
	}
	for _, out := range []string{"fhs", "fhs/internal/bench", "fhs/cmd/fhbench", "fhs/cmd/fhsim", "fhs/internal/corex"} {
		if Detrand.Applies(out) {
			t.Errorf("detrand should not apply to %s", out)
		}
	}
	if Seedflow.Applies("fhs/cmd/fhgen") {
		t.Error("seedflow should exempt cmd/fhgen")
	}
	if !Seedflow.Applies("fhs/internal/workload") {
		t.Error("seedflow should apply to internal/workload")
	}
}

// TestDataflowScope pins the scoping policy of the dataflow analyzers:
// locksafe watches the shared-state packages, durorder only the WAL,
// errsink the durability/load paths; goleak and tickstop run
// module-wide (nil Applies).
func TestDataflowScope(t *testing.T) {
	for _, in := range []string{
		"fhs/internal/service", "fhs/internal/service/wal",
		"fhs/internal/obs", "fhs/internal/multi", "fhs/internal/crashpoint",
	} {
		if !Locksafe.Applies(in) {
			t.Errorf("locksafe should apply to %s", in)
		}
	}
	for _, out := range []string{"fhs/internal/core", "fhs/cmd/fhbench", "fhs/internal/servicex"} {
		if Locksafe.Applies(out) {
			t.Errorf("locksafe should not apply to %s", out)
		}
	}
	if !Durorder.Applies("fhs/internal/service/wal") {
		t.Error("durorder should apply to internal/service/wal")
	}
	for _, out := range []string{"fhs/internal/service", "fhs/internal/service/walx", "fhs/internal/bench"} {
		if Durorder.Applies(out) {
			t.Errorf("durorder should not apply to %s", out)
		}
	}
	for _, in := range []string{
		"fhs/internal/service", "fhs/internal/service/wal",
		"fhs/internal/load", "fhs/internal/bench", "fhs/cmd/fhd",
	} {
		if !Errsink.Applies(in) {
			t.Errorf("errsink should apply to %s", in)
		}
	}
	for _, out := range []string{"fhs/cmd/fhsim", "fhs/internal/exp", "fhs/internal/loadx"} {
		if Errsink.Applies(out) {
			t.Errorf("errsink should not apply to %s", out)
		}
	}
	if Goleak.Applies != nil || Tickstop.Applies != nil {
		t.Error("goleak and tickstop are module-wide; Applies must be nil")
	}
}
