package lint

import (
	"encoding/json"
	"sort"
)

// A Finding is one diagnostic plus its suppression status — the unit
// of fhlint's -json output. Suppressed findings are included so the
// CI artifact records what //fhlint:ignore directives are absorbing;
// a suppression that stops matching anything is then visible as a
// disappeared row, not silence.
type Finding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// RunDetailed executes the analyzers like Run but keeps the
// suppressed diagnostics, returning (kept, suppressed). Malformed
// //fhlint:ignore directives surface in kept under DirectiveAnalyzer,
// exactly as in Run.
func RunDetailed(pkg *Package, analyzers []*Analyzer, useFilters bool) (kept, suppressed []Diagnostic, err error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if useFilters && a.Applies != nil && !a.Applies(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, errRun(a.Name, pkg.Path, err)
		}
	}
	kept, suppressed = filterDetailed(pkg.Fset, pkg.Files, analyzerNames(Analyzers()), diags)
	sort.Slice(kept, func(i, j int) bool { return lessPosition(kept[i], kept[j]) })
	sort.Slice(suppressed, func(i, j int) bool { return lessPosition(suppressed[i], suppressed[j]) })
	return kept, suppressed, nil
}

// Findings flattens kept and suppressed diagnostics into the JSON
// shape, sorted by position with suppressed rows interleaved in
// place.
func Findings(kept, suppressed []Diagnostic) []Finding {
	out := make([]Finding, 0, len(kept)+len(suppressed))
	add := func(diags []Diagnostic, sup bool) {
		for _, d := range diags {
			out = append(out, Finding{
				File:       d.Pos.Filename,
				Line:       d.Pos.Line,
				Col:        d.Pos.Column,
				Analyzer:   d.Analyzer,
				Message:    d.Message,
				Suppressed: sup,
			})
		}
	}
	add(kept, false)
	add(suppressed, true)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// EncodeFindings marshals findings as indented JSON (a stable, diffable
// CI artifact). A nil slice encodes as [] rather than null.
func EncodeFindings(findings []Finding) ([]byte, error) {
	if findings == nil {
		findings = []Finding{}
	}
	return json.MarshalIndent(findings, "", "  ")
}

// DecodeFindings is EncodeFindings' inverse.
func DecodeFindings(data []byte) ([]Finding, error) {
	var out []Finding
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, err
	}
	return out, nil
}
