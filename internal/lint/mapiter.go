package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Mapiter flags the canonical Go nondeterminism source: iterating a map
// in an order-sensitive way. A `for … range m` over a map is reported
// when its body
//
//   - appends to a slice that is not visibly sorted afterwards in the
//     same statement list,
//   - sends on a channel, or
//   - feeds a scheduler decision sink (a Pick method, heap.Push, or a
//     Push/Enqueue queue operation),
//
// because in all three cases the map's random iteration order leaks
// into schedule decisions or serialized output. Collect-then-sort is
// the sanctioned pattern and is recognized: an append whose destination
// is passed to a sort.* / slices.* call (or a .Sort method) later in
// the enclosing statement list is not reported.
var Mapiter = &Analyzer{
	Name: "mapiter",
	Doc: "forbid order-sensitive accumulation (append without a following sort, channel send, " +
		"scheduler decision sinks) inside range-over-map bodies",
	Run: runMapiter,
}

// decisionSinks are method names that commit a scheduling decision or
// queue operation; feeding them in map order makes the schedule depend
// on Go's randomized map iteration.
var decisionSinks = map[string]bool{
	"Pick":    true,
	"Push":    true,
	"Enqueue": true,
}

// stmtContext locates a statement inside its enclosing statement list.
type stmtContext struct {
	list  []ast.Stmt
	index int
}

// stmtContexts maps every statement of f to its enclosing list, so an
// analyzer can scan "the statements after this one".
func stmtContexts(f *ast.File) map[ast.Stmt]stmtContext {
	ctx := map[ast.Stmt]stmtContext{}
	record := func(list []ast.Stmt) {
		for i, s := range list {
			ctx[s] = stmtContext{list, i}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			record(n.List)
		case *ast.CaseClause:
			record(n.Body)
		case *ast.CommClause:
			record(n.Body)
		}
		return true
	})
	return ctx
}

func runMapiter(pass *Pass) error {
	for _, f := range pass.Files {
		ctx := stmtContexts(f)
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, rng, ctx)
			return true
		})
	}
	return nil
}

func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt, ctx map[ast.Stmt]stmtContext) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside range over map: receiver observes the map's random iteration order")
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltin(pass.Info, call, "append") {
					continue
				}
				var dst ast.Expr
				if len(n.Lhs) == len(n.Rhs) {
					dst = n.Lhs[i]
				} else if len(n.Lhs) > 0 {
					dst = n.Lhs[0]
				}
				if dst != nil && sortedAfter(pass, rng, dst, ctx) {
					continue
				}
				pass.Reportf(call.Pos(), "append inside range over map without a sort after the loop: slice order is the map's random iteration order")
			}
		case *ast.CallExpr:
			if name, ok := sinkCall(pass.Info, n); ok {
				pass.Reportf(n.Pos(), "%s called inside range over map: decision order is the map's random iteration order", name)
			}
		}
		return true
	})
}

// sinkCall reports whether call commits a scheduling decision: a
// method from decisionSinks or container/heap.Push.
func sinkCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if pkg := pkgPathOf(info, sel.X); pkg != "" {
		if pkg == "container/heap" && sel.Sel.Name == "Push" {
			return "heap.Push", true
		}
		return "", false
	}
	if !decisionSinks[sel.Sel.Name] {
		return "", false
	}
	// Only method calls count: a selector on a value with a matching
	// method name, not a struct field holding a func.
	if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Type().(*types.Signature).Recv() != nil {
		return sel.Sel.Name, true
	}
	return "", false
}

// sortedAfter reports whether dst is visibly sorted in the statement
// list after the range statement: a call to sort.* or slices.*
// mentioning dst in its arguments, or a dst.Sort() method call.
func sortedAfter(pass *Pass, rng *ast.RangeStmt, dst ast.Expr, ctx map[ast.Stmt]stmtContext) bool {
	dstKey := types.ExprString(ast.Unparen(dst))
	if dstKey == "_" {
		return false
	}
	// Walk outward: the loop may sit inside an if/for nested in the
	// block that performs the sort.
	var stmt ast.Stmt = rng
	for depth := 0; depth < 4; depth++ {
		c, ok := ctx[stmt]
		if !ok {
			return false
		}
		for _, s := range c.list[c.index+1:] {
			found := false
			ast.Inspect(s, func(n ast.Node) bool {
				if found {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					pkg := pkgPathOf(pass.Info, sel.X)
					isSortCall := pkg == "sort" || (pkg == "slices" && strings.HasPrefix(sel.Sel.Name, "Sort")) ||
						(pkg == "" && sel.Sel.Name == "Sort" && types.ExprString(ast.Unparen(sel.X)) == dstKey)
					if !isSortCall {
						return true
					}
					if pkg == "" { // dst.Sort()
						found = true
						return false
					}
					for _, arg := range call.Args {
						if strings.Contains(types.ExprString(arg), dstKey) {
							found = true
							return false
						}
					}
				}
				return true
			})
			if found {
				return true
			}
		}
		// Hop to the enclosing statement if this list belongs to one.
		parent := enclosingStmt(ctx, stmt)
		if parent == nil {
			return false
		}
		stmt = parent
	}
	return false
}

// enclosingStmt finds a statement in ctx whose span strictly contains
// s, i.e. the statement owning the block s lives in.
func enclosingStmt(ctx map[ast.Stmt]stmtContext, s ast.Stmt) ast.Stmt {
	var best ast.Stmt
	for cand := range ctx {
		if cand == s || cand.Pos() > s.Pos() || cand.End() < s.End() {
			continue
		}
		if cand.Pos() == s.Pos() && cand.End() == s.End() {
			continue
		}
		if best == nil || (cand.Pos() >= best.Pos() && cand.End() <= best.End()) {
			best = cand
		}
	}
	return best
}
