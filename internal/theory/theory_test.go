package theory

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLemma1ExpectedKnownValues(t *testing.T) {
	cases := []struct {
		n, r int
		want float64
	}{
		{1, 1, 1},      // one red ball: first draw
		{2, 1, 1.5},    // r/(r+1)·(n+1) = 1/2·3
		{10, 10, 10},   // all red: exactly n draws
		{10, 1, 5.5},   // single red among 10
		{100, 4, 80.8}, // 4/5·101
	}
	for _, c := range cases {
		got, err := Lemma1Expected(c.n, c.r)
		if err != nil {
			t.Errorf("Lemma1Expected(%d,%d): %v", c.n, c.r, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Lemma1Expected(%d,%d) = %g, want %g", c.n, c.r, got, c.want)
		}
	}
}

func TestLemma1Errors(t *testing.T) {
	for _, c := range [][2]int{{0, 1}, {5, 0}, {3, 4}, {-1, -1}} {
		if _, err := Lemma1Expected(c[0], c[1]); err == nil {
			t.Errorf("accepted n=%d r=%d", c[0], c[1])
		}
	}
	if _, err := Lemma1Simulate(0, 1, 10, rand.New(rand.NewSource(1))); err == nil {
		t.Error("Lemma1Simulate accepted n=0")
	}
	if _, err := Lemma1Simulate(5, 2, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("Lemma1Simulate accepted trials=0")
	}
}

func TestLemma1SimulationMatchesFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, c := range [][2]int{{20, 3}, {50, 10}, {8, 8}, {30, 1}} {
		want, err := Lemma1Expected(c[0], c[1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := Lemma1Simulate(c[0], c[1], 20000, rng)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 0.05*want+0.3 {
			t.Errorf("simulate(n=%d,r=%d) = %g, formula %g", c[0], c[1], got, want)
		}
	}
}

func TestRandomizedLowerBoundFormula(t *testing.T) {
	// K=2, P=[2,3]: 3 − 1/3 − 1/4 − 1/4 = 2.1666...
	got, err := RandomizedLowerBound([]int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := 3.0 - 1.0/3 - 1.0/4 - 1.0/4
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("bound = %g, want %g", got, want)
	}
}

func TestDeterministicLowerBoundFormula(t *testing.T) {
	got, err := DeterministicLowerBound([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-(3-0.25)) > 1e-12 {
		t.Errorf("bound = %g, want 2.75", got)
	}
}

func TestBoundErrors(t *testing.T) {
	if _, err := RandomizedLowerBound(nil); err == nil {
		t.Error("RandomizedLowerBound accepted empty")
	}
	if _, err := RandomizedLowerBound([]int{2, 0}); err == nil {
		t.Error("RandomizedLowerBound accepted zero pool")
	}
	if _, err := DeterministicLowerBound(nil); err == nil {
		t.Error("DeterministicLowerBound accepted empty")
	}
	if _, err := DeterministicLowerBound([]int{0}); err == nil {
		t.Error("DeterministicLowerBound accepted zero pool")
	}
	if _, err := KGreedyUpperBound(0); err == nil {
		t.Error("KGreedyUpperBound accepted K=0")
	}
	if _, err := AdversarialOptimum(nil, 1); err == nil {
		t.Error("AdversarialOptimum accepted empty")
	}
	if _, err := AdversarialOptimum([]int{2}, 0); err == nil {
		t.Error("AdversarialOptimum accepted M=0")
	}
	if _, err := AdversarialExpectedOnline(nil, 1); err == nil {
		t.Error("AdversarialExpectedOnline accepted empty")
	}
	if _, err := AdversarialExpectedOnline([]int{1}, 0); err == nil {
		t.Error("AdversarialExpectedOnline accepted M=0")
	}
	if _, err := AdversarialExpectedOnline([]int{0}, 1); err == nil {
		t.Error("AdversarialExpectedOnline accepted zero pool")
	}
}

func TestKGreedyUpperBound(t *testing.T) {
	got, err := KGreedyUpperBound(4)
	if err != nil || got != 5 {
		t.Errorf("KGreedyUpperBound(4) = %g, %v; want 5", got, err)
	}
}

func TestAdversarialOptimum(t *testing.T) {
	got, err := AdversarialOptimum([]int{2, 3}, 4)
	if err != nil || got != 2-1+4*3 {
		t.Errorf("optimum = %d, %v; want 13", got, err)
	}
}

func TestPropertyRandomizedBelowDeterministicBound(t *testing.T) {
	// The randomized bound is always at most the deterministic one
	// (randomization cannot make the adversary's life easier... the
	// deterministic bound K+1−1/Pmax dominates K+1−Σ1/(Pα+1)−1/(Pmax+1)).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(6)
		procs := make([]int, k)
		for i := range procs {
			procs[i] = 1 + rng.Intn(20)
		}
		r, err1 := RandomizedLowerBound(procs)
		d, err2 := DeterministicLowerBound(procs)
		u, err3 := KGreedyUpperBound(k)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return r <= d+1e-9 && d <= u+1e-9 && r > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyExpectedOnlineBetweenOptimumAndUpperBound(t *testing.T) {
	// For large M the expected online completion divided by the optimum
	// approaches the randomized bound from below; check the gross
	// ordering T* ≤ E[T_online] for sane configurations.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(4)
		pk := 2 + rng.Intn(6)
		procs := make([]int, k)
		for i := range procs {
			procs[i] = 1 + rng.Intn(pk)
		}
		procs[k-1] = pk
		m := 8 + rng.Intn(20)
		opt, err1 := AdversarialOptimum(procs, m)
		online, err2 := AdversarialExpectedOnline(procs, m)
		if err1 != nil || err2 != nil {
			return false
		}
		return online >= float64(opt)*0.9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
