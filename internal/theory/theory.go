// Package theory implements the closed-form results of Sections II-III:
// the balls-in-a-box expectation of Lemma 1, the randomized online
// lower bound of Theorem 2, the earlier deterministic lower bound of
// He, Sun and Hsu, and the KGreedy competitive upper bound — plus
// Monte-Carlo helpers that verify them empirically in tests and in the
// examples/lowerbound program.
package theory

import (
	"fmt"
	"math/rand"
)

// Lemma1Expected returns the expected number of draws, without
// replacement, to collect all r red balls out of n total:
// E[Q] = r(n+1)/(r+1) (Lemma 1).
func Lemma1Expected(n, r int) (float64, error) {
	if n <= 0 || r <= 0 || r > n {
		return 0, fmt.Errorf("theory: invalid ball counts n=%d r=%d", n, r)
	}
	return float64(r) * float64(n+1) / float64(r+1), nil
}

// Lemma1Simulate estimates the Lemma 1 expectation by simulation:
// trials random permutations of n balls with r reds, averaging the
// position of the last red ball.
func Lemma1Simulate(n, r, trials int, rng *rand.Rand) (float64, error) {
	if n <= 0 || r <= 0 || r > n {
		return 0, fmt.Errorf("theory: invalid ball counts n=%d r=%d", n, r)
	}
	if trials <= 0 {
		return 0, fmt.Errorf("theory: trials = %d, want > 0", trials)
	}
	var sum int64
	for t := 0; t < trials; t++ {
		perm := rng.Perm(n)
		last := 0
		for pos, ball := range perm {
			if ball < r && pos > last {
				last = pos
			}
		}
		sum += int64(last) + 1 // positions are 1-based draws
	}
	return float64(sum) / float64(trials), nil
}

// RandomizedLowerBound returns the Theorem 2 bound on the competitive
// ratio of any randomized online algorithm for K-DAG scheduling:
//
//	K + 1 − Σα 1/(Pα+1) − 1/(Pmax+1)
//
// where the sum runs over all K types. (The abstract drops the +1 on
// the trailing Pmax term; we implement the inequality actually derived
// in the proof, Inequality (4).)
func RandomizedLowerBound(procs []int) (float64, error) {
	if len(procs) == 0 {
		return 0, fmt.Errorf("theory: no processor pools")
	}
	k := len(procs)
	pmax := 0
	sum := 0.0
	for a, p := range procs {
		if p <= 0 {
			return 0, fmt.Errorf("theory: pool %d has %d processors, want > 0", a, p)
		}
		sum += 1 / float64(p+1)
		if p > pmax {
			pmax = p
		}
	}
	return float64(k) + 1 - sum - 1/float64(pmax+1), nil
}

// DeterministicLowerBound returns the He-Sun-Hsu bound for
// deterministic online algorithms: K + 1 − 1/Pmax.
func DeterministicLowerBound(procs []int) (float64, error) {
	if len(procs) == 0 {
		return 0, fmt.Errorf("theory: no processor pools")
	}
	pmax := 0
	for a, p := range procs {
		if p <= 0 {
			return 0, fmt.Errorf("theory: pool %d has %d processors, want > 0", a, p)
		}
		if p > pmax {
			pmax = p
		}
	}
	return float64(len(procs)) + 1 - 1/float64(pmax), nil
}

// KGreedyUpperBound returns KGreedy's competitive guarantee, K + 1,
// for a machine with K types.
func KGreedyUpperBound(k int) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("theory: K = %d, want > 0", k)
	}
	return float64(k) + 1, nil
}

// AdversarialOptimum returns the offline optimal completion time of
// the Theorem 2 instance: T*(J) = K − 1 + M·PK, where PK is the last
// (maximum) pool.
func AdversarialOptimum(procs []int, m int) (int64, error) {
	if len(procs) == 0 {
		return 0, fmt.Errorf("theory: no processor pools")
	}
	if m <= 0 {
		return 0, fmt.Errorf("theory: M = %d, want > 0", m)
	}
	pk := procs[len(procs)-1]
	if pk <= 0 {
		return 0, fmt.Errorf("theory: last pool has %d processors, want > 0", pk)
	}
	return int64(len(procs)) - 1 + int64(m)*int64(pk), nil
}

// AdversarialExpectedOnline returns the Theorem 2 proof's lower bound
// on the expected completion time of any online algorithm on the
// adversarial instance:
//
//	(K + 1 − Σα 1/(Pα+1))·M·PK − PK/(PK+1)·M − 1
//
// Comparing a measured online schedule against this (and against
// AdversarialOptimum) demonstrates the Ω(K) separation empirically.
func AdversarialExpectedOnline(procs []int, m int) (float64, error) {
	if len(procs) == 0 {
		return 0, fmt.Errorf("theory: no processor pools")
	}
	if m <= 0 {
		return 0, fmt.Errorf("theory: M = %d, want > 0", m)
	}
	k := len(procs)
	pk := procs[k-1]
	sum := 0.0
	for a, p := range procs {
		if p <= 0 {
			return 0, fmt.Errorf("theory: pool %d has %d processors, want > 0", a, p)
		}
		sum += 1 / float64(p+1)
	}
	mpk := float64(m) * float64(pk)
	return (float64(k)+1-sum)*mpk - float64(pk)/float64(pk+1)*float64(m) - 1, nil
}
