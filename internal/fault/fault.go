// Package fault models machine unreliability for the simulator: the
// paper (and our seed reproduction) assumes a perfectly reliable
// machine with fixed pool sizes Pα, while the motivating systems —
// clusters of typed server classes — lose and regain machines
// constantly. This package supplies the deterministic, seeded fault
// models the engines inject:
//
//   - Processor churn: a Timeline makes the per-type capacity a step
//     function Pα(t), either scripted explicitly or generated from
//     seeded MTTF/MTTR distributions (Config.NewPlan). A capacity drop
//     crashes processors; the engine kills resident tasks, which lose
//     their progress (non-preemptive) or their current quantum
//     (preemptive) and are re-enqueued.
//   - Transient task failure: a completed task fails with seeded
//     probability (Plan.FailureProb) and is re-enqueued from scratch.
//
// Both models charge a per-task retry budget (Plan.MaxRetries); a task
// that exhausts it aborts the run with an error, so no fault scenario
// can loop forever. Everything is a pure function of the Plan — the
// completion-failure coin is a hash of (seed, task, attempt), not a
// stateful RNG — so identical plans reproduce identical fault
// sequences in both engines, across reruns and across worker counts.
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"fhs/internal/dag"
)

// Plan is the concrete fault injection for one simulation run. The
// zero value (and nil) injects nothing. A Plan is immutable once built
// and safe to share between runs and goroutines.
type Plan struct {
	// Timeline makes capacity time-varying; nil keeps the static Pα.
	Timeline *Timeline

	// FailureProb is the probability, in [0, 1], that a task fails
	// transiently at the moment it completes and must rerun in full.
	FailureProb float64

	// MaxRetries bounds how many times one task may be re-enqueued
	// after a crash kill or transient failure before the run aborts.
	MaxRetries int

	// Seed drives the completion-failure coin. Plans with different
	// seeds fail different (task, attempt) pairs.
	Seed int64
}

// Active reports whether the plan can actually perturb a run.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	return p.FailureProb > 0 || (p.Timeline != nil && len(p.Timeline.times) > 0)
}

// Validate checks the plan against a machine's base pool sizes.
func (p *Plan) Validate(procs []int) error {
	if p == nil {
		return nil
	}
	if p.FailureProb < 0 || p.FailureProb > 1 || math.IsNaN(p.FailureProb) {
		return fmt.Errorf("fault: failure probability %g outside [0, 1]", p.FailureProb)
	}
	if p.MaxRetries < 0 {
		return fmt.Errorf("fault: negative retry budget %d", p.MaxRetries)
	}
	if p.Timeline != nil {
		if err := p.Timeline.Validate(procs); err != nil {
			return err
		}
	}
	return nil
}

// FailsCompletion reports whether the given completion attempt of a
// task fails transiently. It is a pure hash of (Seed, id, attempt) —
// attempt is 0 for the task's first execution — so the coin sequence
// is identical in both engines and independent of event ordering.
func (p *Plan) FailsCompletion(id dag.TaskID, attempt int) bool {
	if p == nil || p.FailureProb <= 0 {
		return false
	}
	z := uint64(p.Seed) ^ 0x9E3779B97F4A7C15
	z += uint64(uint32(id))*0xBF58476D1CE4E5B9 + uint64(uint32(attempt))*0x94D049BB133111EB
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11)/(1<<53) < p.FailureProb
}

// step is one capacity breakpoint of a single pool.
type step struct {
	at  int64
	cap int
}

// Timeline is a per-type capacity step function Pα(t). It starts at
// the machine's base pool sizes; each Set call changes one pool's
// capacity from an instant onward. Build it with NewTimeline + Set (or
// Config.NewPlan) and treat it as immutable afterwards.
type Timeline struct {
	base  []int
	steps [][]step // per type, strictly increasing at
	times []int64  // merged, sorted, distinct breakpoint times
}

// NewTimeline returns a timeline with constant capacity equal to the
// given base pool sizes.
func NewTimeline(procs []int) *Timeline {
	return &Timeline{
		base:  append([]int(nil), procs...),
		steps: make([][]step, len(procs)),
	}
}

// K returns the number of pools the timeline covers.
func (tl *Timeline) K() int { return len(tl.base) }

// Set changes pool alpha's capacity to cap from time at onward. Times
// must be positive and strictly increasing per pool; capacities must
// stay within [0, base].
func (tl *Timeline) Set(alpha dag.Type, at int64, cap int) error {
	if int(alpha) < 0 || int(alpha) >= len(tl.base) {
		return fmt.Errorf("fault: timeline has no pool %d", alpha)
	}
	if at <= 0 {
		return fmt.Errorf("fault: timeline step for pool %d at t=%d, want > 0", alpha, at)
	}
	if s := tl.steps[alpha]; len(s) > 0 && at <= s[len(s)-1].at {
		return fmt.Errorf("fault: timeline steps for pool %d not strictly increasing at t=%d", alpha, at)
	}
	if cap < 0 || cap > tl.base[alpha] {
		return fmt.Errorf("fault: pool %d capacity %d outside [0, %d]", alpha, cap, tl.base[alpha])
	}
	tl.steps[alpha] = append(tl.steps[alpha], step{at: at, cap: cap})
	i := sort.Search(len(tl.times), func(i int) bool { return tl.times[i] >= at })
	if i == len(tl.times) || tl.times[i] != at {
		tl.times = append(tl.times, 0)
		copy(tl.times[i+1:], tl.times[i:])
		tl.times[i] = at
	}
	return nil
}

// MustSet is Set for statically known steps; it panics on error.
func (tl *Timeline) MustSet(alpha dag.Type, at int64, cap int) {
	if err := tl.Set(alpha, at, cap); err != nil {
		panic(err)
	}
}

// Validate checks the timeline against a machine's base pool sizes: it
// must have been built for the same machine, and every pool must end
// with at least one processor so runs can always finish.
func (tl *Timeline) Validate(procs []int) error {
	if len(tl.base) != len(procs) {
		return fmt.Errorf("fault: timeline covers %d pools, machine has %d", len(tl.base), len(procs))
	}
	for a, p := range procs {
		if tl.base[a] != p {
			return fmt.Errorf("fault: timeline base for pool %d is %d, machine has %d", a, tl.base[a], p)
		}
		if c := tl.FinalCap(dag.Type(a)); c < 1 {
			return fmt.Errorf("fault: pool %d ends with capacity %d, want >= 1 (runs could never finish)", a, c)
		}
	}
	return nil
}

// CapAt returns pool alpha's capacity at time t.
func (tl *Timeline) CapAt(alpha dag.Type, t int64) int {
	s := tl.steps[alpha]
	// Last step with at <= t; base capacity before the first step.
	i := sort.Search(len(s), func(i int) bool { return s[i].at > t })
	if i == 0 {
		return tl.base[alpha]
	}
	return s[i-1].cap
}

// FinalCap returns pool alpha's capacity after the last breakpoint.
func (tl *Timeline) FinalCap(alpha dag.Type) int {
	if s := tl.steps[alpha]; len(s) > 0 {
		return s[len(s)-1].cap
	}
	return tl.base[alpha]
}

// NextChangeAfter returns the earliest breakpoint time of any pool
// strictly after t, or -1 if the timeline never changes again.
func (tl *Timeline) NextChangeAfter(t int64) int64 {
	i := sort.Search(len(tl.times), func(i int) bool { return tl.times[i] > t })
	if i == len(tl.times) {
		return -1
	}
	return tl.times[i]
}

// Times returns every breakpoint time, sorted ascending. The slice is
// a view; callers must not modify it.
func (tl *Timeline) Times() []int64 { return tl.times }

// End returns the last breakpoint time (0 for a constant timeline).
func (tl *Timeline) End() int64 {
	if len(tl.times) == 0 {
		return 0
	}
	return tl.times[len(tl.times)-1]
}

// CapIntegral returns ∫₀ᵀ Pα(t) dt: the total processor-time pool
// alpha offered up to time upTo. It is the utilization denominator for
// faulty runs and an upper bound on the pool's busy time.
func (tl *Timeline) CapIntegral(alpha dag.Type, upTo int64) int64 {
	var total int64
	prev, cap := int64(0), tl.base[alpha]
	for _, s := range tl.steps[alpha] {
		if s.at >= upTo {
			break
		}
		total += int64(cap) * (s.at - prev)
		prev, cap = s.at, s.cap
	}
	if upTo > prev {
		total += int64(cap) * (upTo - prev)
	}
	return total
}

// Config describes a fault distribution; NewPlan instantiates it into
// the concrete Plan for one run. The zero value injects nothing.
type Config struct {
	// MTTF is the mean time to failure of one processor; 0 disables
	// crashes. MTTR is the mean time to repair; required when MTTF > 0.
	// Up- and downtimes are drawn exponentially per processor.
	MTTF, MTTR float64

	// Horizon bounds the generated churn: past it every processor is
	// repaired and stays up, so runs always terminate. Required when
	// MTTF > 0.
	Horizon int64

	// FailureProb is the transient completion-failure probability.
	FailureProb float64

	// MaxRetries is the per-task retry budget of generated plans.
	MaxRetries int
}

// Active reports whether the distribution injects any faults.
func (c *Config) Active() bool {
	return c != nil && (c.MTTF > 0 || c.FailureProb > 0)
}

// Validate reports malformed distributions eagerly.
func (c *Config) Validate() error {
	if c.MTTF < 0 || math.IsNaN(c.MTTF) {
		return fmt.Errorf("fault: MTTF %g, want >= 0", c.MTTF)
	}
	if c.MTTF > 0 {
		if c.MTTR <= 0 || math.IsNaN(c.MTTR) {
			return fmt.Errorf("fault: MTTR %g, want > 0 when MTTF > 0", c.MTTR)
		}
		if c.Horizon <= 0 {
			return fmt.Errorf("fault: horizon %d, want > 0 when MTTF > 0", c.Horizon)
		}
	}
	if c.FailureProb < 0 || c.FailureProb > 1 || math.IsNaN(c.FailureProb) {
		return fmt.Errorf("fault: failure probability %g outside [0, 1]", c.FailureProb)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("fault: negative retry budget %d", c.MaxRetries)
	}
	return nil
}

// NewPlan draws one concrete fault plan for a machine from the
// distribution. Every processor alternates exponentially distributed
// up/down periods (mean MTTF and MTTR, at least one time unit each)
// until Horizon, after which it stays up; the coin seed is drawn from
// rng, so the whole plan derives from the caller's seed stream.
func (c *Config) NewPlan(procs []int, rng *rand.Rand) *Plan {
	plan := &Plan{FailureProb: c.FailureProb, MaxRetries: c.MaxRetries, Seed: rng.Int63()}
	if c.MTTF <= 0 {
		return plan
	}
	type transition struct {
		at    int64
		delta int // -1 crash, +1 repair
	}
	duration := func(mean float64) int64 {
		d := int64(math.Ceil(rng.ExpFloat64() * mean))
		if d < 1 {
			d = 1
		}
		return d
	}
	tl := NewTimeline(procs)
	for a := range procs {
		var ts []transition
		for unit := 0; unit < procs[a]; unit++ {
			t, up := int64(0), true
			for {
				if up {
					t += duration(c.MTTF)
				} else {
					t += duration(c.MTTR)
				}
				if t >= c.Horizon {
					if !up {
						// The unit is down at the horizon: repair it there.
						ts = append(ts, transition{at: c.Horizon, delta: +1})
					}
					break
				}
				if up {
					ts = append(ts, transition{at: t, delta: -1})
				} else {
					ts = append(ts, transition{at: t, delta: +1})
				}
				up = !up
			}
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i].at < ts[j].at })
		cap := procs[a]
		for i := 0; i < len(ts); {
			at := ts[i].at
			for i < len(ts) && ts[i].at == at {
				cap += ts[i].delta
				i++
			}
			tl.MustSet(dag.Type(a), at, cap)
		}
	}
	if len(tl.times) > 0 {
		plan.Timeline = tl
	}
	return plan
}
