package fault

import (
	"math/rand"
	"strings"
	"testing"

	"fhs/internal/dag"
)

func TestTimelineCapAt(t *testing.T) {
	tl := NewTimeline([]int{3, 2})
	tl.MustSet(0, 5, 1)
	tl.MustSet(0, 9, 3)
	tl.MustSet(1, 7, 0)
	tl.MustSet(1, 8, 2)

	cases := []struct {
		alpha dag.Type
		t     int64
		want  int
	}{
		{0, 0, 3}, {0, 4, 3}, {0, 5, 1}, {0, 8, 1}, {0, 9, 3}, {0, 100, 3},
		{1, 0, 2}, {1, 6, 2}, {1, 7, 0}, {1, 8, 2},
	}
	for _, c := range cases {
		if got := tl.CapAt(c.alpha, c.t); got != c.want {
			t.Errorf("CapAt(%d, %d) = %d, want %d", c.alpha, c.t, got, c.want)
		}
	}
	if got := tl.End(); got != 9 {
		t.Errorf("End() = %d, want 9", got)
	}
	if got := tl.NextChangeAfter(0); got != 5 {
		t.Errorf("NextChangeAfter(0) = %d, want 5", got)
	}
	if got := tl.NextChangeAfter(5); got != 7 {
		t.Errorf("NextChangeAfter(5) = %d, want 7", got)
	}
	if got := tl.NextChangeAfter(9); got != -1 {
		t.Errorf("NextChangeAfter(9) = %d, want -1", got)
	}
}

func TestTimelineCapIntegral(t *testing.T) {
	tl := NewTimeline([]int{2})
	tl.MustSet(0, 3, 1)
	tl.MustSet(0, 5, 2)
	// [0,3): 2, [3,5): 1, [5,∞): 2.
	cases := []struct {
		upTo int64
		want int64
	}{
		{0, 0}, {1, 2}, {3, 6}, {4, 7}, {5, 8}, {9, 16},
	}
	for _, c := range cases {
		if got := tl.CapIntegral(0, c.upTo); got != c.want {
			t.Errorf("CapIntegral(0, %d) = %d, want %d", c.upTo, got, c.want)
		}
	}
}

func TestTimelineSetErrors(t *testing.T) {
	tl := NewTimeline([]int{2})
	if err := tl.Set(1, 1, 1); err == nil {
		t.Error("Set on missing pool: want error")
	}
	if err := tl.Set(0, 0, 1); err == nil {
		t.Error("Set at t=0: want error")
	}
	if err := tl.Set(0, 4, 3); err == nil {
		t.Error("Set above base capacity: want error")
	}
	tl.MustSet(0, 4, 1)
	if err := tl.Set(0, 4, 2); err == nil {
		t.Error("Set at non-increasing time: want error")
	}
}

func TestTimelineValidate(t *testing.T) {
	tl := NewTimeline([]int{2})
	tl.MustSet(0, 4, 0)
	if err := tl.Validate([]int{2}); err == nil || !strings.Contains(err.Error(), "capacity 0") {
		t.Errorf("timeline ending at 0 capacity: got %v, want final-capacity error", err)
	}
	tl.MustSet(0, 6, 1)
	if err := tl.Validate([]int{2}); err != nil {
		t.Errorf("repaired timeline: %v", err)
	}
	if err := tl.Validate([]int{3}); err == nil {
		t.Error("base mismatch: want error")
	}
	if err := tl.Validate([]int{2, 2}); err == nil {
		t.Error("K mismatch: want error")
	}
}

func TestPlanFailsCompletionDeterministic(t *testing.T) {
	p := &Plan{FailureProb: 0.5, Seed: 42}
	q := &Plan{FailureProb: 0.5, Seed: 42}
	hits := 0
	for id := dag.TaskID(0); id < 200; id++ {
		for attempt := 0; attempt < 4; attempt++ {
			a, b := p.FailsCompletion(id, attempt), q.FailsCompletion(id, attempt)
			if a != b {
				t.Fatalf("coin (%d, %d) not deterministic", id, attempt)
			}
			if a {
				hits++
			}
		}
	}
	// 800 coins at p=0.5: a hash this far off 400 would be broken.
	if hits < 300 || hits > 500 {
		t.Errorf("coin rate %d/800 at p=0.5, want ~400", hits)
	}
	if (&Plan{FailureProb: 0, Seed: 42}).FailsCompletion(0, 0) {
		t.Error("p=0 coin fired")
	}
	always := &Plan{FailureProb: 1, Seed: 42}
	for id := dag.TaskID(0); id < 50; id++ {
		if !always.FailsCompletion(id, 0) {
			t.Fatalf("p=1 coin did not fire for task %d", id)
		}
	}
}

func TestPlanActiveAndValidate(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Active() {
		t.Error("nil plan active")
	}
	if err := nilPlan.Validate([]int{1}); err != nil {
		t.Errorf("nil plan validate: %v", err)
	}
	if (&Plan{}).Active() {
		t.Error("zero plan active")
	}
	if !(&Plan{FailureProb: 0.1}).Active() {
		t.Error("failure-prob plan inactive")
	}
	tl := NewTimeline([]int{1})
	if (&Plan{Timeline: tl}).Active() {
		t.Error("constant timeline counted as active")
	}
	tl.MustSet(0, 2, 0)
	tl.MustSet(0, 3, 1)
	if !(&Plan{Timeline: tl}).Active() {
		t.Error("stepped timeline inactive")
	}
	if err := (&Plan{FailureProb: 1.5}).Validate([]int{1}); err == nil {
		t.Error("probability > 1: want error")
	}
	if err := (&Plan{MaxRetries: -1}).Validate([]int{1}); err == nil {
		t.Error("negative retries: want error")
	}
}

func TestConfigValidate(t *testing.T) {
	good := []Config{
		{},
		{FailureProb: 0.5, MaxRetries: 3},
		{MTTF: 100, MTTR: 10, Horizon: 1000},
	}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("config %d: %v", i, err)
		}
	}
	bad := []Config{
		{MTTF: -1},
		{MTTF: 100},                          // missing MTTR
		{MTTF: 100, MTTR: 10},                // missing Horizon
		{FailureProb: 2},                     // prob out of range
		{FailureProb: 0.5, MaxRetries: -1},   // negative budget
		{MTTF: 100, MTTR: -5, Horizon: 1000}, // negative MTTR
		{MTTF: 100, MTTR: 10, Horizon: -1},   // negative horizon
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestConfigNewPlanDeterministicAndValid(t *testing.T) {
	c := Config{MTTF: 50, MTTR: 20, Horizon: 500, FailureProb: 0.1, MaxRetries: 5}
	procs := []int{3, 1, 4}

	p1 := c.NewPlan(procs, rand.New(rand.NewSource(7)))
	p2 := c.NewPlan(procs, rand.New(rand.NewSource(7)))
	if p1.Seed != p2.Seed {
		t.Fatal("plan seed not deterministic")
	}
	if p1.Timeline == nil || p2.Timeline == nil {
		t.Fatal("churn config produced no timeline")
	}
	t1, t2 := p1.Timeline, p2.Timeline
	if len(t1.times) != len(t2.times) {
		t.Fatalf("breakpoint counts differ: %d vs %d", len(t1.times), len(t2.times))
	}
	for a := range procs {
		for _, bt := range t1.times {
			if t1.CapAt(dag.Type(a), bt) != t2.CapAt(dag.Type(a), bt) {
				t.Fatalf("capacities differ at pool %d t=%d", a, bt)
			}
		}
	}

	// Generated plans are always valid for their machine and terminate:
	// every pool is fully repaired at/after the horizon.
	for seed := int64(0); seed < 20; seed++ {
		p := c.NewPlan(procs, rand.New(rand.NewSource(seed)))
		if err := p.Validate(procs); err != nil {
			t.Fatalf("seed %d: generated plan invalid: %v", seed, err)
		}
		if p.Timeline == nil {
			continue
		}
		if end := p.Timeline.End(); end > c.Horizon {
			t.Fatalf("seed %d: timeline extends to %d past horizon %d", seed, end, c.Horizon)
		}
		for a := range procs {
			if got := p.Timeline.FinalCap(dag.Type(a)); got != procs[a] {
				t.Fatalf("seed %d: pool %d ends at capacity %d, want full repair to %d", seed, a, got, procs[a])
			}
			for _, bt := range p.Timeline.Times() {
				if cap := p.Timeline.CapAt(dag.Type(a), bt); cap < 0 || cap > procs[a] {
					t.Fatalf("seed %d: pool %d capacity %d at t=%d outside [0, %d]", seed, a, cap, bt, procs[a])
				}
			}
		}
	}
}

func TestConfigNewPlanNoChurn(t *testing.T) {
	c := Config{FailureProb: 0.3, MaxRetries: 2}
	p := c.NewPlan([]int{2, 2}, rand.New(rand.NewSource(1)))
	if p.Timeline != nil {
		t.Error("MTTF=0 config produced a timeline")
	}
	if !p.Active() {
		t.Error("failure-only plan inactive")
	}
	if p.FailureProb != 0.3 || p.MaxRetries != 2 {
		t.Error("plan did not carry config fields")
	}
}
