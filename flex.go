package fhs

import (
	"math/rand"

	"fhs/internal/flex"
)

// Flexible (JIT-compiled) task scheduling — the extension the paper's
// conclusion poses as an open problem. A flexible task carries a
// per-type work table and the scheduler picks its execution type at
// dispatch time.
type (
	// FlexJob is an immutable flexible K-DAG.
	FlexJob = flex.Job
	// FlexJobBuilder assembles a FlexJob.
	FlexJobBuilder = flex.Builder
	// FlexTask is one node of a FlexJob.
	FlexTask = flex.Task
	// FlexPolicy decides which ready task a freed processor runs.
	FlexPolicy = flex.Policy
	// FlexResult reports a finished flexible simulation.
	FlexResult = flex.Result
)

// FlexNoWork marks a type a flexible task cannot execute on.
const FlexNoWork = flex.NoWork

// NewFlexJobBuilder returns a builder for a flexible job with k types.
func NewFlexJobBuilder(k int) *FlexJobBuilder { return flex.NewBuilder(k) }

// NewFlexGreedy returns the FIFO dispatch policy (KGreedy analogue).
func NewFlexGreedy() FlexPolicy { return flex.NewGreedy() }

// NewFlexBestFit returns the fastest-type-first dispatch policy.
func NewFlexBestFit() FlexPolicy { return flex.NewBestFit() }

// NewFlexBalance returns the MQB-style balance-aware dispatch policy.
func NewFlexBalance() FlexPolicy { return flex.NewBalance() }

// SimulateFlex runs a flexible job non-preemptively under the policy.
func SimulateFlex(job *FlexJob, p FlexPolicy, procs []int) (FlexResult, error) {
	return flex.Run(job, p, procs)
}

// FlexFromJob derives a flexible job from a rigid one: each task keeps
// its home type at its original work, and with probability flexFrac
// becomes JIT-compilable for every other type at work·penalty.
func FlexFromJob(job *Job, flexFrac, penalty float64, rng *rand.Rand) *FlexJob {
	return flex.FromGraph(job, flexFrac, penalty, rng)
}
