// Command fhsim regenerates the paper's evaluation figures.
//
// Usage:
//
//	fhsim [-figure 4|5|6|7|8|faults|all] [-faults] [-instances N]
//	      [-seed S] [-workers W] [-shards P] [-csv FILE] [-svg DIR]
//	      [-match SUBSTR] [-quiet] [-verify] [-trace FILE] [-chrome FILE]
//	      [-metrics FILE]
//
// Each figure expands to its experiment panels (see internal/exp);
// fhsim runs them, prints aligned text tables, a one-line summary per
// panel, and optionally a flat CSV of all rows. -faults (or -figure
// faults) runs the beyond-paper robustness study instead: the paper's
// schedulers under processor churn and transient task failures, with
// wasted-work, kill and recovery columns added to the tables. "all"
// covers the paper figures only, so the reproduction runs stay exactly
// as published; the fault study is always explicit.
//
// Observability: -trace re-runs instance 0 of every selected panel
// with full tracing — the exact schedules the aggregates included —
// writes the combined JSONL trace (one scope per panel, nested scopes
// per scheduler) and prints each scheduler's per-type utilization
// timeline. -chrome additionally writes the same trace in Chrome
// trace_event form (load it at chrome://tracing or ui.perfetto.dev).
// -metrics aggregates harness and engine counters over the whole run
// into a Prometheus-style text dump.
//
// -shards P runs every simulation on the sharded optimistic scheduling
// engine (internal/shard) with P scheduler goroutines. The sharded
// engine is bit-identical to the sequential one, so all tables match a
// -shards 0 run; preemptive and fault panels fall back to the
// sequential engine, which they require.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"time"

	"fhs/internal/analyze"
	"fhs/internal/exp"
	"fhs/internal/obs"
	"fhs/internal/plot"
)

// timelineBuckets is the resolution of the printed per-type
// utilization timelines.
const timelineBuckets = 20

// tracePanel re-runs instance 0 of a panel on a shared tracer and
// prints one utilization timeline per scheduler.
func tracePanel(spec exp.Spec, tr *obs.Tracer, quiet bool) error {
	tr.BeginScope(spec.Name)
	_, procs, runs, err := exp.TraceInstance(spec, 0, tr)
	if err != nil {
		return err
	}
	tr.EndScope(spec.Name)
	if quiet {
		return nil
	}
	for _, run := range runs {
		tl, err := analyze.TimelineFromObs(run.Events, procs, timelineBuckets)
		if err != nil {
			return err
		}
		fmt.Printf("%s · %s instance 0 ", spec.Name, run.Scheduler)
		if err := analyze.WriteTimeline(os.Stdout, tl); err != nil {
			return err
		}
	}
	return nil
}

// writeFile writes one exporter's output, closing cleanly.
func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeSVGs renders one bar chart per panel plus one line chart per
// K-sweep group (panels named "... , K=<n>").
func writeSVGs(dir string, tables []exp.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	slug := regexp.MustCompile(`[^A-Za-z0-9]+`)
	fileFor := func(name string) string {
		return filepath.Join(dir, strings.Trim(slug.ReplaceAllString(name, "_"), "_")+".svg")
	}
	sweep := regexp.MustCompile(`^(.*), K=(\d+)$`)
	groups := map[string][]exp.Table{}
	labels := map[string][]string{}
	var order []string
	for _, t := range tables {
		f, err := os.Create(fileFor(t.Name))
		if err != nil {
			return err
		}
		err = plot.WriteBarSVG(f, t)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		if m := sweep.FindStringSubmatch(t.Name); m != nil {
			if _, ok := groups[m[1]]; !ok {
				order = append(order, m[1])
			}
			groups[m[1]] = append(groups[m[1]], t)
			labels[m[1]] = append(labels[m[1]], "K="+m[2])
		}
	}
	for _, name := range order {
		if len(groups[name]) < 2 {
			continue
		}
		f, err := os.Create(fileFor(name + " sweep"))
		if err != nil {
			return err
		}
		err = plot.WriteLinesSVG(f, name, groups[name], labels[name])
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("fhsim: ")
	var (
		figure    = flag.String("figure", "all", "figure to reproduce: 4, 5, 6, 7, 8, faults or all (= paper figures)")
		faults    = flag.Bool("faults", false, "run the robustness preset (shorthand for -figure faults)")
		instances = flag.Int("instances", 1000, "job instances per plotted point (paper: 5000)")
		seed      = flag.Int64("seed", 1, "root random seed")
		workers   = flag.Int("workers", 0, "parallel workers (0 = all cores)")
		shards    = flag.Int("shards", 0, "scheduler goroutines per simulation on the sharded engine (0 = sequential engine)")
		csvPath   = flag.String("csv", "", "also write results as CSV to this file")
		match     = flag.String("match", "", "only run panels whose name contains this substring")
		svgDir    = flag.String("svg", "", "also write one SVG chart per panel (and per sweep) to this directory")
		quiet     = flag.Bool("quiet", false, "print only per-panel summaries")
		paranoid  = flag.Bool("verify", false, "audit every simulated schedule with internal/verify (~1.5x slower)")
		tracePath = flag.String("trace", "", "re-run instance 0 of each panel traced; write the combined JSONL trace to this file")
		chromeF   = flag.String("chrome", "", "with -trace: also write the trace in Chrome trace_event format to this file")
		metricsF  = flag.String("metrics", "", "aggregate run metrics and write a Prometheus-style text dump to this file")
	)
	flag.Parse()
	if *chromeF != "" && *tracePath == "" {
		log.Fatal("-chrome needs -trace")
	}

	figs := exp.Figures()
	var names []string
	switch {
	case *faults:
		names = []string{"faults"}
	case *figure == "all":
		for name := range figs {
			if name != "faults" { // robustness study is opt-in
				names = append(names, name)
			}
		}
		sort.Strings(names)
	default:
		if _, ok := figs[*figure]; !ok {
			log.Fatalf("unknown figure %q (want 4, 5, 6, 7, 8, faults or all)", *figure)
		}
		names = []string{*figure}
	}

	opts := exp.Options{Instances: *instances, Seed: *seed, Workers: *workers, Paranoid: *paranoid, Shards: *shards}
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer()
	}
	var registry *obs.Registry
	if *metricsF != "" {
		registry = obs.NewRegistry()
	}
	var all []exp.Table
	for _, name := range names {
		specs := figs[name](opts)
		for _, spec := range specs {
			if *match != "" && !strings.Contains(spec.Name, *match) {
				continue
			}
			spec.Metrics = registry
			start := time.Now()
			table, err := exp.Run(spec)
			if err != nil {
				log.Fatal(err)
			}
			if !*quiet {
				if err := exp.WriteTable(os.Stdout, table); err != nil {
					log.Fatal(err)
				}
			}
			fmt.Printf("%s [%.1fs]\n", exp.Summarize(table), time.Since(start).Seconds())
			all = append(all, table)
			if tracer.Enabled() {
				if err := tracePanel(spec, tracer, *quiet); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	if tracer.Enabled() {
		if err := writeFile(*tracePath, func(f *os.File) error {
			return obs.WriteJSONL(f, tracer.Events())
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d events)\n", *tracePath, tracer.Len())
		if *chromeF != "" {
			if err := writeFile(*chromeF, func(f *os.File) error {
				return obs.WriteChromeTrace(f, tracer.Events())
			}); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", *chromeF)
		}
	}
	if registry != nil {
		if err := writeFile(*metricsF, func(f *os.File) error {
			return obs.WritePrometheus(f, registry.Snapshot())
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *metricsF)
	}

	if *svgDir != "" {
		if err := writeSVGs(*svgDir, all); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote SVG charts to %s\n", *svgDir)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := exp.WriteCSV(f, all); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
}
