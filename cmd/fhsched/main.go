// Command fhsched schedules a single K-DAG job file on a described
// machine and reports the completion time, the lower bound, the
// completion-time ratio and per-type utilization — optionally with a
// full execution trace.
//
// Usage:
//
//	fhsched -job FILE -procs P1,P2,... [-sched NAME] [-preemptive]
//	        [-seed S] [-trace] [-gantt] [-analyze] [-all]
//	        [-obs FILE] [-chrome FILE] [-timeline]
//	fhsched -checktrace FILE
//
// -obs streams each scheduler's run into a structured observability
// trace (one scope per scheduler) and writes it as JSONL; -chrome
// writes the same trace in Chrome trace_event form; -timeline prints a
// bucketed per-type utilization timeline per scheduler. -checktrace
// validates an existing JSONL trace file against the event schema and
// exits — CI uses it to gate traced fhsim output.
//
// Examples:
//
//	fhgen -class ep -k 2 > job.json
//	fhsched -job job.json -procs 3,3 -sched MQB
//	fhsched -job job.json -procs 3,3 -all        # compare all six
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"fhs/internal/analyze"
	"fhs/internal/core"
	"fhs/internal/dag"
	"fhs/internal/metrics"
	"fhs/internal/obs"
	"fhs/internal/sim"
)

// timelineBuckets is the resolution of -timeline output.
const timelineBuckets = 20

// checkTrace validates a JSONL obs trace file: every line must decode
// canonically, every event must satisfy the schema, and scopes must
// nest. It prints a one-line summary on success.
func checkTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	events, err := obs.ReadJSONL(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("%s: ok, %d events\n", path, len(events))
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("fhsched: ")
	var (
		jobPath    = flag.String("job", "", "job file (JSON, as written by fhgen)")
		procsSpec  = flag.String("procs", "", "pool sizes per type, e.g. 3,3,3,3")
		schedName  = flag.String("sched", "MQB", "scheduler name (see fhs docs); ignored with -all")
		preemptive = flag.Bool("preemptive", false, "use preemptive scheduling")
		seed       = flag.Int64("seed", 1, "seed for randomized scheduler variants")
		trace      = flag.Bool("trace", false, "print the execution trace")
		gantt      = flag.Bool("gantt", false, "print an ASCII Gantt chart")
		analyzeF   = flag.Bool("analyze", false, "print a schedule quality analysis (starvation, waits, queues)")
		all        = flag.Bool("all", false, "compare all six paper schedulers")
		obsPath    = flag.String("obs", "", "write a JSONL observability trace to this file")
		chromeF    = flag.String("chrome", "", "write the observability trace in Chrome trace_event format to this file")
		timeline   = flag.Bool("timeline", false, "print a per-type utilization timeline per scheduler")
		checkPath  = flag.String("checktrace", "", "validate a JSONL obs trace file against the schema and exit")
	)
	flag.Parse()
	if *checkPath != "" {
		if err := checkTrace(*checkPath); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *jobPath == "" || *procsSpec == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*jobPath)
	if err != nil {
		log.Fatal(err)
	}
	g, err := dag.ReadGraph(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	procs, err := parsePools(*procsSpec)
	if err != nil {
		log.Fatal(err)
	}
	lb, err := metrics.LowerBound(g, procs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job: %d tasks, K=%d, span=%d, total work=%d, lower bound=%.1f\n",
		g.NumTasks(), g.K(), g.Span(), g.TotalWork(), lb)

	names := []string{*schedName}
	if *all {
		names = core.Names()
	}
	var tracer *obs.Tracer
	if *obsPath != "" || *chromeF != "" || *timeline {
		tracer = obs.NewTracer()
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheduler\tcompletion\tratio\tutilization")
	for _, name := range names {
		s, err := core.New(name, core.Params{Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		cfg := sim.Config{
			Procs:        procs,
			Preemptive:   *preemptive,
			CollectTrace: *trace || *gantt || *analyzeF,
			Obs:          tracer,
		}
		tracer.BeginScope(name)
		lo := tracer.Len()
		res, err := sim.Run(g, s, cfg)
		if err != nil {
			log.Fatal(err)
		}
		hi := tracer.Len()
		tracer.EndScope(name)
		utils := make([]string, len(res.Utilization))
		for i, u := range res.Utilization {
			utils[i] = fmt.Sprintf("%.2f", u)
		}
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%s\n",
			s.Name(), res.CompletionTime, metrics.Ratio(res.CompletionTime, lb), strings.Join(utils, " "))
		if *trace {
			tw.Flush()
			for _, ev := range res.Trace {
				fmt.Printf("  t=%-6d %-8s task=%-5d type=%d\n", ev.Time, ev.Kind, ev.Task, ev.Type)
			}
		}
		if *gantt {
			tw.Flush()
			if err := sim.WriteGantt(os.Stdout, g, &res, cfg, 0); err != nil {
				log.Fatal(err)
			}
		}
		if *analyzeF {
			tw.Flush()
			rep, err := analyze.Analyze(g, &res, procs)
			if err != nil {
				log.Fatal(err)
			}
			if err := analyze.WriteReport(os.Stdout, rep); err != nil {
				log.Fatal(err)
			}
		}
		if *timeline {
			tw.Flush()
			tl, err := analyze.TimelineFromObs(tracer.Events()[lo:hi], procs, timelineBuckets)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%s ", name)
			if err := analyze.WriteTimeline(os.Stdout, tl); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	if *obsPath != "" {
		if err := writeTraceFile(*obsPath, tracer, obs.WriteJSONL); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d events)\n", *obsPath, tracer.Len())
	}
	if *chromeF != "" {
		if err := writeTraceFile(*chromeF, tracer, obs.WriteChromeTrace); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *chromeF)
	}
}

// writeTraceFile renders the tracer's events with one exporter,
// closing cleanly.
func writeTraceFile(path string, tr *obs.Tracer, write func(io.Writer, []obs.Event) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f, tr.Events())
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func parsePools(spec string) ([]int, error) {
	parts := strings.Split(spec, ",")
	pools := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad pool size %q: %v", p, err)
		}
		pools = append(pools, v)
	}
	return pools, nil
}
