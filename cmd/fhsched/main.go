// Command fhsched schedules a single K-DAG job file on a described
// machine and reports the completion time, the lower bound, the
// completion-time ratio and per-type utilization — optionally with a
// full execution trace.
//
// Usage:
//
//	fhsched -job FILE -procs P1,P2,... [-sched NAME] [-preemptive]
//	        [-seed S] [-trace] [-gantt] [-analyze] [-all]
//
// Examples:
//
//	fhgen -class ep -k 2 > job.json
//	fhsched -job job.json -procs 3,3 -sched MQB
//	fhsched -job job.json -procs 3,3 -all        # compare all six
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"fhs/internal/analyze"
	"fhs/internal/core"
	"fhs/internal/dag"
	"fhs/internal/metrics"
	"fhs/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fhsched: ")
	var (
		jobPath    = flag.String("job", "", "job file (JSON, as written by fhgen)")
		procsSpec  = flag.String("procs", "", "pool sizes per type, e.g. 3,3,3,3")
		schedName  = flag.String("sched", "MQB", "scheduler name (see fhs docs); ignored with -all")
		preemptive = flag.Bool("preemptive", false, "use preemptive scheduling")
		seed       = flag.Int64("seed", 1, "seed for randomized scheduler variants")
		trace      = flag.Bool("trace", false, "print the execution trace")
		gantt      = flag.Bool("gantt", false, "print an ASCII Gantt chart")
		analyzeF   = flag.Bool("analyze", false, "print a schedule quality analysis (starvation, waits, queues)")
		all        = flag.Bool("all", false, "compare all six paper schedulers")
	)
	flag.Parse()
	if *jobPath == "" || *procsSpec == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*jobPath)
	if err != nil {
		log.Fatal(err)
	}
	g, err := dag.ReadGraph(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	procs, err := parsePools(*procsSpec)
	if err != nil {
		log.Fatal(err)
	}
	lb, err := metrics.LowerBound(g, procs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job: %d tasks, K=%d, span=%d, total work=%d, lower bound=%.1f\n",
		g.NumTasks(), g.K(), g.Span(), g.TotalWork(), lb)

	names := []string{*schedName}
	if *all {
		names = core.Names()
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheduler\tcompletion\tratio\tutilization")
	for _, name := range names {
		s, err := core.New(name, core.Params{Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		cfg := sim.Config{
			Procs:        procs,
			Preemptive:   *preemptive,
			CollectTrace: *trace || *gantt || *analyzeF,
		}
		res, err := sim.Run(g, s, cfg)
		if err != nil {
			log.Fatal(err)
		}
		utils := make([]string, len(res.Utilization))
		for i, u := range res.Utilization {
			utils[i] = fmt.Sprintf("%.2f", u)
		}
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%s\n",
			s.Name(), res.CompletionTime, metrics.Ratio(res.CompletionTime, lb), strings.Join(utils, " "))
		if *trace {
			tw.Flush()
			for _, ev := range res.Trace {
				fmt.Printf("  t=%-6d %-8s task=%-5d type=%d\n", ev.Time, ev.Kind, ev.Task, ev.Type)
			}
		}
		if *gantt {
			tw.Flush()
			if err := sim.WriteGantt(os.Stdout, g, &res, cfg, 0); err != nil {
				log.Fatal(err)
			}
		}
		if *analyzeF {
			tw.Flush()
			rep, err := analyze.Analyze(g, &res, procs)
			if err != nil {
				log.Fatal(err)
			}
			if err := analyze.WriteReport(os.Stdout, rep); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
}

func parsePools(spec string) ([]int, error) {
	parts := strings.Split(spec, ",")
	pools := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad pool size %q: %v", p, err)
		}
		pools = append(pools, v)
	}
	return pools, nil
}
