// Command fhlint runs the project's determinism-and-safety lint suite
// (internal/lint) over module packages and exits nonzero on findings.
//
// Usage:
//
//	fhlint ./...                 # whole module (what CI gates on)
//	fhlint ./internal/core       # one package
//	fhlint -list                 # print the suite
//	fhlint -analyzers=mapiter,detrand ./...
//	fhlint -json ./...           # machine-readable findings, suppressed included
//
// Diagnostics print as file:line:col: [analyzer] message. A finding is
// suppressed by an explanatory directive on the offending line or the
// line above:
//
//	//fhlint:ignore <analyzer> <reason>
//
// The reason is mandatory and the analyzer name must match; malformed
// directives are themselves findings.
//
// fhlint is a standalone multichecker rather than a `go vet -vettool`
// plugin: the vettool protocol is implemented by x/tools' unitchecker,
// and this module is deliberately dependency-free (the build
// environment has no module proxy), so the stdlib-only driver in
// internal/lint loads and typechecks packages itself.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fhs/internal/lint"
)

func main() {
	var (
		list   = flag.Bool("list", false, "print the analyzers in the suite and exit")
		only   = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
		nofilt = flag.Bool("all-packages", false, "ignore per-analyzer package scoping (detrand/seedflow apply everywhere)")
		asJSON = flag.Bool("json", false, "emit findings as JSON (including suppressed ones) instead of text")
	)
	flag.Parse()

	suite := lint.Analyzers()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		var picked []*lint.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "fhlint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			picked = append(picked, a)
		}
		suite = picked
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fhlint:", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fhlint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fhlint:", err)
		os.Exit(2)
	}
	findings := 0
	var allKept, allSuppressed []lint.Diagnostic
	for _, pkg := range pkgs {
		kept, suppressed, err := lint.RunDetailed(pkg, suite, !*nofilt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fhlint:", err)
			os.Exit(2)
		}
		findings += len(kept)
		if *asJSON {
			allKept = append(allKept, kept...)
			allSuppressed = append(allSuppressed, suppressed...)
			continue
		}
		for _, d := range kept {
			fmt.Println(d)
		}
	}
	if *asJSON {
		data, err := lint.EncodeFindings(lint.Findings(allKept, allSuppressed))
		if err != nil {
			fmt.Fprintln(os.Stderr, "fhlint:", err)
			os.Exit(2)
		}
		fmt.Println(string(data))
	}
	// Suppressed findings never fail the run: the exit code gates on
	// what survived the directives.
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "fhlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
