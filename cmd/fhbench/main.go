// Command fhbench runs the continuous-benchmarking suite and compares
// benchmark reports.
//
// Measure (writes a schema-versioned report and a human table):
//
//	fhbench [-suite full|ci] [-instances N] [-seed S] [-workers W]
//	        [-benchtime D] [-match SUBSTR] [-note TEXT] [-out BENCH.json]
//	        [-cpuprofile FILE] [-memprofile FILE] [-trace FILE]
//
// -trace runs the suite's standard engine workload once per engine
// scheduler with full observability (outside the timed loops — the
// measurements themselves always run untraced) and writes the JSONL
// trace; a .metrics file with a Prometheus-style dump lands alongside.
//
// Compare (exits 2 when a benchmark regresses beyond the gate or the
// two reports measured different work):
//
//	fhbench -compare old.json new.json [-gate 0.25] [-noise 0.05]
//
// The committed baseline lives at BENCH_1.json; CI runs the ci-scale
// suite and compares against it (warn-only on pull requests, hard
// gate on main). See the Performance section of EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime/pprof"
	"time"

	"fhs/internal/bench"
	"fhs/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fhbench: ")
	var (
		suite      = flag.String("suite", "full", "scale preset: full (baseline) or ci (reduced)")
		instances  = flag.Int("instances", 0, "override exp-panel instances per iteration")
		seed       = flag.Int64("seed", 0, "override the root seed")
		workers    = flag.Int("workers", 0, "exp harness workers (0 = all cores; fingerprints are invariant)")
		benchtime  = flag.Duration("benchtime", 0, "override target measuring time per benchmark")
		match      = flag.String("match", "", "only run benchmarks whose name contains this substring")
		note       = flag.String("note", "", "free-form label stored in the report")
		out        = flag.String("out", "", "write the JSON report to this file")
		quiet      = flag.Bool("quiet", false, "suppress the per-benchmark progress lines")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the suite run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile after the suite run to this file")
		tracePath  = flag.String("trace", "", "write a JSONL obs trace of the suite's engine workload to this file")
		compare    = flag.Bool("compare", false, "compare two reports: fhbench -compare old.json new.json")
		gate       = flag.Float64("gate", 0.25, "compare: relative slowdown that fails the comparison")
		noise      = flag.Float64("noise", 0.05, "compare: relative delta treated as measurement noise")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			log.Fatal("usage: fhbench -compare old.json new.json")
		}
		runCompare(flag.Arg(0), flag.Arg(1), bench.Gate{Noise: *noise, Fail: *gate})
		return
	}
	if flag.NArg() != 0 {
		log.Fatalf("unexpected arguments %v (did you mean -compare?)", flag.Args())
	}

	sc, err := bench.ScaleByName(*suite)
	if err != nil {
		log.Fatal(err)
	}
	if *instances > 0 {
		sc.Instances = *instances
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *workers > 0 {
		sc.Workers = *workers
	}
	if *benchtime > 0 {
		sc.BenchTime = *benchtime
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	logf := log.Printf
	if *quiet {
		logf = nil
	}
	start := time.Now()
	rep, err := bench.Run(sc, *match, logf)
	if err != nil {
		log.Fatal(err)
	}
	rep.Note = *note
	fmt.Printf("suite finished in %.1fs\n\n", time.Since(start).Seconds())
	if err := rep.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		err = rep.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *out)
	}

	if *tracePath != "" {
		events, snaps, err := bench.TraceRun(sc)
		if err != nil {
			log.Fatal(err)
		}
		if err := writeTo(*tracePath, func(f *os.File) error {
			return obs.WriteJSONL(f, events)
		}); err != nil {
			log.Fatal(err)
		}
		metricsPath := *tracePath + ".metrics"
		if err := writeTo(metricsPath, func(f *os.File) error {
			return obs.WritePrometheus(f, snaps)
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d events) and %s\n", *tracePath, len(events), metricsPath)
	}
}

// writeTo writes one exporter's output, closing cleanly.
func writeTo(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func runCompare(oldPath, newPath string, g bench.Gate) {
	oldRep, err := bench.LoadReport(oldPath)
	if err != nil {
		log.Fatal(err)
	}
	newRep, err := bench.LoadReport(newPath)
	if err != nil {
		log.Fatal(err)
	}
	c, err := bench.Compare(oldRep, newRep, g)
	if err != nil {
		log.Fatal(err)
	}
	if err := bench.WriteComparison(os.Stdout, c); err != nil {
		log.Fatal(err)
	}
	if c.Failed() {
		os.Exit(2)
	}
}
