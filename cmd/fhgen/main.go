// Command fhgen generates K-DAG job files from the paper's workload
// distributions, or from the Theorem 2 adversarial construction, and
// writes them as JSON (the job-file format of cmd/fhsched) or
// Graphviz DOT.
//
// Usage:
//
//	fhgen -class ep|tree|ir|adversarial|figure1 [-typing layered|random]
//	      [-k K] [-seed S] [-format json|dot] [-m M] [-procs P1,P2,...]
//	      [-o FILE]
//
// Examples:
//
//	fhgen -class ep -typing layered -k 4 -seed 7 > job.json
//	fhgen -class tree -format dot | dot -Tpng > tree.png
//	fhgen -class adversarial -procs 3,3,3,3 -m 4 > bad.json
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"fhs/internal/dag"
	"fhs/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fhgen: ")
	var (
		class  = flag.String("class", "ep", "workload class: ep, tree, ir, adversarial or figure1")
		typing = flag.String("typing", "layered", "task typing: layered or random")
		k      = flag.Int("k", 4, "number of resource types")
		seed   = flag.Int64("seed", 1, "random seed")
		format = flag.String("format", "json", "output format: json or dot")
		m      = flag.Int("m", 4, "adversarial parameter M")
		procs  = flag.String("procs", "", "adversarial pool sizes, e.g. 3,3,3,3 (default 3 per type)")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	g, err := generate(*class, *typing, *k, *m, *procs, rng)
	if err != nil {
		log.Fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}

	switch *format {
	case "json":
		err = dag.WriteGraph(w, g)
	case "dot":
		err = dag.WriteDOT(w, g, *class)
	default:
		err = fmt.Errorf("unknown format %q (want json or dot)", *format)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "fhgen: %d tasks, K=%d, span=%d, total work=%d\n",
		g.NumTasks(), g.K(), g.Span(), g.TotalWork())
}

func generate(class, typing string, k, m int, procs string, rng *rand.Rand) (*dag.Graph, error) {
	var ty workload.Typing
	switch strings.ToLower(typing) {
	case "layered":
		ty = workload.Layered
	case "random":
		ty = workload.Random
	default:
		return nil, fmt.Errorf("unknown typing %q (want layered or random)", typing)
	}
	switch strings.ToLower(class) {
	case "ep":
		return workload.Generate(workload.DefaultEP(k, ty), rng)
	case "tree":
		return workload.Generate(workload.DefaultTree(k, ty), rng)
	case "ir":
		return workload.Generate(workload.DefaultIR(k, ty), rng)
	case "figure1":
		return dag.Figure1(), nil
	case "adversarial":
		pools, err := parsePools(procs, k)
		if err != nil {
			return nil, err
		}
		job, err := workload.Adversarial(workload.AdversarialConfig{Procs: pools, M: m}, rng)
		if err != nil {
			return nil, err
		}
		return job.Graph, nil
	default:
		return nil, fmt.Errorf("unknown class %q (want ep, tree, ir, adversarial or figure1)", class)
	}
}

func parsePools(spec string, k int) ([]int, error) {
	if spec == "" {
		pools := make([]int, k)
		for i := range pools {
			pools[i] = 3
		}
		return pools, nil
	}
	parts := strings.Split(spec, ",")
	pools := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad pool size %q: %v", p, err)
		}
		pools = append(pools, v)
	}
	return pools, nil
}
