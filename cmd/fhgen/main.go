// Command fhgen generates K-DAG job files from the paper's workload
// distributions, or from the Theorem 2 adversarial construction, and
// writes them as JSON (the job-file format of cmd/fhsched) or
// Graphviz DOT. With -arrivals it instead emits a multi-job arrival
// trace (JSONL) for the fhd service: timed submits across weighted
// tenants with a configurable cancel fraction.
//
// Usage:
//
//	fhgen -class ep|tree|ir|adversarial|figure1 [-typing layered|random]
//	      [-k K] [-seed S] [-format json|dot] [-m M] [-procs P1,P2,...]
//	      [-o FILE]
//	fhgen -arrivals N [-shape uniform|poisson|pareto|diurnal|burst]
//	      [-tenants name:W,...] [-mean-gap G] [-cancel F]
//	      [-priorities P] [-class C] [-k K] [-seed S] [-o FILE]
//
// Examples:
//
//	fhgen -class ep -typing layered -k 4 -seed 7 > job.json
//	fhgen -class tree -format dot | dot -Tpng > tree.png
//	fhgen -class adversarial -procs 3,3,3,3 -m 4 > bad.json
//	fhgen -arrivals 20 -tenants acme:2,blob:1 -k 2 -cancel 0.2 > trace.jsonl
//	fhgen -arrivals 200 -shape pareto -k 2 -seed 11 > bursty.jsonl
//
// The arrival-trace JSONL schema (one service.Op per line) is
// documented in one place: on service.Op in internal/service/trace.go.
// Shapes other than the uniform default are documented on the
// internal/load shape constants; fhload consumes these traces
// unchanged via -trace.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"fhs/internal/dag"
	"fhs/internal/load"
	"fhs/internal/service"
	"fhs/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fhgen: ")
	var (
		class  = flag.String("class", "ep", "workload class: ep, tree, ir, adversarial or figure1")
		typing = flag.String("typing", "layered", "task typing: layered or random")
		k      = flag.Int("k", 4, "number of resource types")
		seed   = flag.Int64("seed", 1, "random seed")
		format = flag.String("format", "json", "output format: json or dot")
		m      = flag.Int("m", 4, "adversarial parameter M")
		procs  = flag.String("procs", "", "adversarial pool sizes, e.g. 3,3,3,3 (default 3 per type)")
		out    = flag.String("o", "", "output file (default stdout)")

		arrivals   = flag.Int("arrivals", 0, "emit an fhd arrival trace with this many job submits instead of one graph")
		shape      = flag.String("shape", "uniform", "arrival-trace gap shape: uniform, poisson, pareto, diurnal or burst")
		tenants    = flag.String("tenants", "", "arrival-trace tenants as name:weight pairs, e.g. acme:2,blob:1")
		meanGap    = flag.Int64("mean-gap", 4, "arrival-trace mean inter-arrival gap")
		cancelFrac = flag.Float64("cancel", 0, "arrival-trace fraction of jobs cancelled later")
		priorities = flag.Int("priorities", 1, "arrival-trace priority levels (1 = all equal)")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	if *arrivals > 0 {
		if err := generateArrivals(*out, genArrivalsConfig{
			jobs: *arrivals, shape: *shape, tenants: *tenants, meanGap: *meanGap,
			cancelFrac: *cancelFrac, priorities: *priorities,
			class: *class, k: *k, seedBase: *seed,
		}, rng); err != nil {
			log.Fatal(err)
		}
		return
	}
	g, err := generate(*class, *typing, *k, *m, *procs, rng)
	if err != nil {
		log.Fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}

	switch *format {
	case "json":
		err = dag.WriteGraph(w, g)
	case "dot":
		err = dag.WriteDOT(w, g, *class)
	default:
		err = fmt.Errorf("unknown format %q (want json or dot)", *format)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "fhgen: %d tasks, K=%d, span=%d, total work=%d\n",
		g.NumTasks(), g.K(), g.Span(), g.TotalWork())
}

type genArrivalsConfig struct {
	jobs       int
	shape      string
	tenants    string
	meanGap    int64
	cancelFrac float64
	priorities int
	class      string
	k          int
	seedBase   int64
}

// generateArrivals writes a multi-job arrival trace for the fhd
// service. The single -class flag pins one workload class; left at its
// default the trace rotates through all three paper classes.
func generateArrivals(out string, gc genArrivalsConfig, rng *rand.Rand) error {
	specs, err := parseTenants(gc.tenants)
	if err != nil {
		return err
	}
	var classes []string
	if gc.class != "" && gc.class != "ep" {
		if _, err := workload.ClassByName(gc.class); err != nil {
			return fmt.Errorf("-arrivals: %w", err)
		}
		classes = []string{gc.class}
	}
	ops, err := load.Synthesize(load.TraceConfig{
		Shape:          gc.shape,
		Jobs:           gc.jobs,
		Tenants:        specs,
		MeanGap:        gc.meanGap,
		CancelFrac:     gc.cancelFrac,
		Classes:        classes,
		K:              gc.k,
		SeedBase:       gc.seedBase,
		PriorityLevels: gc.priorities,
	}, rng)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := service.WriteTrace(w, ops); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fhgen: %d ops (%d submits), %d tenants, span t=0..%d\n",
		len(ops), gc.jobs, max(len(specs), 1), ops[len(ops)-1].T)
	return nil
}

// parseTenants parses name:weight pairs; weights are optional and
// default to 1.
func parseTenants(spec string) ([]service.TenantSpec, error) {
	if spec == "" {
		return nil, nil
	}
	var specs []service.TenantSpec
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), ":")
		if name == "" {
			return nil, fmt.Errorf("bad tenant %q, want name or name:weight", part)
		}
		w := 1.0
		if ok {
			var err error
			if w, err = strconv.ParseFloat(val, 64); err != nil || w <= 0 {
				return nil, fmt.Errorf("bad tenant weight %q", part)
			}
		}
		specs = append(specs, service.TenantSpec{Name: name, Weight: w})
	}
	return specs, nil
}

func generate(class, typing string, k, m int, procs string, rng *rand.Rand) (*dag.Graph, error) {
	ty, err := workload.TypingByName(typing)
	if err != nil {
		return nil, err
	}
	if cl, err := workload.ClassByName(class); err == nil {
		return workload.Generate(workload.Default(cl, k, ty), rng)
	}
	switch strings.ToLower(class) {
	case "figure1":
		return dag.Figure1(), nil
	case "adversarial":
		pools, err := parsePools(procs, k)
		if err != nil {
			return nil, err
		}
		job, err := workload.Adversarial(workload.AdversarialConfig{Procs: pools, M: m}, rng)
		if err != nil {
			return nil, err
		}
		return job.Graph, nil
	default:
		return nil, fmt.Errorf("unknown class %q (want ep, tree, ir, adversarial or figure1)", class)
	}
}

func parsePools(spec string, k int) ([]int, error) {
	if spec == "" {
		pools := make([]int, k)
		for i := range pools {
			pools[i] = 3
		}
		return pools, nil
	}
	parts := strings.Split(spec, ",")
	pools := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad pool size %q: %v", p, err)
		}
		pools = append(pools, v)
	}
	return pools, nil
}
