// Command fhd runs the online multi-job scheduling service: a
// deterministic event-loop core accepting K-DAG job arrivals over
// shared typed pools, exposed as a JSON-over-HTTP API.
//
// Usage:
//
//	fhd -procs P1,P2,... [-addr HOST:PORT] [-sched NAME]
//	    [-quota N] [-quotas tenant=N,...] [-nofair] [-workers N]
//	fhd -procs P1,P2,... -replay trace.jsonl [-noaudit]
//	    [-obs FILE] [-metrics FILE]
//
// In serve mode fhd listens on -addr; see DESIGN.md for the API. In
// replay mode fhd feeds a recorded arrival trace (as written by
// fhgen -arrivals) through a fresh core, audits the resulting stream
// with the independent verifier, prints the per-tenant summary and the
// canonical replay fingerprint, and exits. The fingerprint is
// bit-identical across runs, worker counts and server restarts — CI
// replays the same trace twice and compares.
//
// Examples:
//
//	fhgen -arrivals 20 -tenants acme:2,blob:1 -k 2 > trace.jsonl
//	fhd -procs 2,2 -replay trace.jsonl
//	fhd -procs 2,2 -addr 127.0.0.1:8080 &
//	curl -X POST localhost:8080/v1/jobs -d \
//	  '{"id":"j0","tenant":"acme","spec":{"class":"ep","k":2,"seed":7}}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"fhs/internal/obs"
	"fhs/internal/service"
	"fhs/internal/verify"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fhd: ")
	var (
		procsSpec  = flag.String("procs", "", "pool sizes per type, e.g. 2,2,3")
		addr       = flag.String("addr", "127.0.0.1:8080", "serve mode: listen address")
		schedName  = flag.String("sched", "MQB", "scheduler name (MQB or KGreedy)")
		quota      = flag.Int("quota", 0, "default per-tenant admission quota (0 = unlimited)")
		quotasSpec = flag.String("quotas", "", "per-tenant quota overrides, e.g. acme=2,blob=1")
		nofair     = flag.Bool("nofair", false, "disable deterministic fair share (FIFO within priority)")
		workers    = flag.Int("workers", 1, "parallel scoring workers (never changes outcomes)")
		replayPath = flag.String("replay", "", "replay mode: arrival trace file (JSONL)")
		noaudit    = flag.Bool("noaudit", false, "replay mode: skip the independent stream audit")
		obsPath    = flag.String("obs", "", "replay mode: write the obs event stream (JSONL) to this file")
		metricsF   = flag.String("metrics", "", "replay mode: write Prometheus metrics to this file")
	)
	flag.Parse()
	if *procsSpec == "" {
		flag.Usage()
		os.Exit(2)
	}
	procs, err := parsePools(*procsSpec)
	if err != nil {
		log.Fatal(err)
	}
	quotas, err := parseQuotas(*quotasSpec)
	if err != nil {
		log.Fatal(err)
	}
	cfg := service.Config{
		Procs:        procs,
		Scheduler:    *schedName,
		DefaultQuota: *quota,
		Quotas:       quotas,
		NoFairShare:  *nofair,
		Workers:      *workers,
		Obs:          obs.NewTracer(),
		Metrics:      obs.NewRegistry(),
	}

	if *replayPath != "" {
		if err := replay(cfg, *replayPath, !*noaudit, *obsPath, *metricsF); err != nil {
			log.Fatal(err)
		}
		return
	}

	core, err := service.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on http://%s (procs %s, sched %s)", *addr, *procsSpec, *schedName)
	log.Fatal(http.ListenAndServe(*addr, service.NewHandler(core)))
}

// replay feeds a recorded arrival trace through a fresh core and
// reports the outcome: admission counts, per-tenant weighted
// completion times, the audit verdict and the replay fingerprint.
func replay(cfg service.Config, path string, audit bool, obsPath, metricsPath string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	ops, err := service.ReadTrace(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	res, err := service.Replay(cfg, ops)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}

	fmt.Printf("replayed %d ops: %d submitted, %d rejected, %d cancelled, %d cancel misses, makespan %d\n",
		len(ops), res.Submitted, res.Rejected, res.Cancelled, res.CancelMisses, res.Makespan)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "tenant\tadmitted\tdone\tcancelled\trejected\tweighted completion\tflow sum")
	for _, ts := range res.Summary.Tenants {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.1f\t%d\n",
			ts.Tenant, ts.Admitted, ts.Done, ts.Cancelled, ts.Rejected, ts.WeightedCompletion, ts.FlowSum)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if audit {
		sa := verify.StreamAudit{
			Procs:        cfg.Procs,
			DefaultQuota: cfg.DefaultQuota,
			Quotas:       cfg.Quotas,
			FairShare:    !cfg.NoFairShare,
		}
		for _, j := range res.Stream {
			sa.Jobs = append(sa.Jobs, verify.StreamJob{
				Job: j.Idx, Tenant: j.Tenant, Priority: j.Priority,
				Weight: j.Weight, Graph: j.Graph,
			})
		}
		if err := verify.AuditServiceStream(sa, res.Events); err != nil {
			return fmt.Errorf("stream audit failed: %w", err)
		}
		fmt.Printf("audit: ok (%d jobs, %d events)\n", len(sa.Jobs), len(res.Events))
	}

	if obsPath != "" {
		if err := writeFile(obsPath, func(w *os.File) error {
			return obs.WriteJSONL(w, res.Events)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d events)\n", obsPath, len(res.Events))
	}
	if metricsPath != "" {
		if err := writeFile(metricsPath, func(w *os.File) error {
			return obs.WritePrometheus(w, cfg.Metrics.Snapshot())
		}); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", metricsPath)
	}

	fmt.Printf("fingerprint: %s\n", res.Fingerprint)
	return nil
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func parsePools(spec string) ([]int, error) {
	parts := strings.Split(spec, ",")
	pools := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad pool size %q: %v", p, err)
		}
		pools = append(pools, v)
	}
	return pools, nil
}

func parseQuotas(spec string) (map[string]int, error) {
	if spec == "" {
		return nil, nil
	}
	quotas := make(map[string]int)
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad quota %q, want tenant=N", part)
		}
		n, err := strconv.Atoi(val)
		if err != nil {
			return nil, fmt.Errorf("bad quota %q: %v", part, err)
		}
		quotas[name] = n
	}
	return quotas, nil
}
