// Command fhd runs the online multi-job scheduling service: a
// deterministic event-loop core accepting K-DAG job arrivals over
// shared typed pools, exposed as a JSON-over-HTTP API.
//
// Usage:
//
//	fhd -procs P1,P2,... [-addr HOST:PORT] [-sched NAME]
//	    [-quota N] [-quotas tenant=N,...] [-nofair] [-workers N]
//	    [-wal DIR] [-fsync always|batch|off] [-maxbacklog N]
//	    [-mttf F -mttr F -horizon T [-retries N] [-faultseed S]]
//	fhd -procs P1,P2,... -replay trace.jsonl [-noaudit]
//	    [-obs FILE] [-metrics FILE]
//
// In serve mode fhd listens on -addr; see DESIGN.md for the API. With
// -wal DIR every mutating operation is journaled to an append-only
// write-ahead log before it touches the core, so a crash at any
// instant — including a SIGKILL mid-write — recovers the exact
// pre-crash state on restart: the journal replays through the
// deterministic core and /v1/fingerprint reports a bit-identical
// certificate. During recovery /readyz serves 503 and mutating
// requests are refused. SIGINT/SIGTERM trigger a graceful drain:
// /readyz flips to 503, in-flight requests finish, the WAL is synced
// and closed, and fhd exits 0.
//
// In replay mode fhd feeds a recorded arrival trace (as written by
// fhgen -arrivals) through a fresh core, audits the resulting stream
// with the independent verifier, prints the per-tenant summary and the
// canonical replay fingerprint, and exits. The fingerprint is
// bit-identical across runs, worker counts and server restarts — CI
// replays the same trace twice and compares, and the crash-recovery
// smoke SIGKILLs a serving fhd mid-trace and diffs fingerprints after
// restart.
//
// The -mttf/-mttr/-horizon flags draw a seeded capacity-churn fault
// plan (processors crash and repair with exponential up/down times);
// killed tasks are retried up to -retries times before the job fails.
//
// Examples:
//
//	fhgen -arrivals 20 -tenants acme:2,blob:1 -k 2 > trace.jsonl
//	fhd -procs 2,2 -replay trace.jsonl
//	fhd -procs 2,2 -addr 127.0.0.1:8080 -wal /var/lib/fhd/wal &
//	curl -X POST localhost:8080/v1/jobs -d \
//	  '{"id":"j0","tenant":"acme","spec":{"class":"ep","k":2,"seed":7}}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"fhs/internal/fault"
	"fhs/internal/obs"
	"fhs/internal/service"
	"fhs/internal/service/wal"
	"fhs/internal/verify"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fhd: ")
	var (
		procsSpec  = flag.String("procs", "", "pool sizes per type, e.g. 2,2,3")
		addr       = flag.String("addr", "127.0.0.1:8080", "serve mode: listen address")
		schedName  = flag.String("sched", "MQB", "scheduler name (MQB or KGreedy)")
		quota      = flag.Int("quota", 0, "default per-tenant admission quota (0 = unlimited)")
		quotasSpec = flag.String("quotas", "", "per-tenant quota overrides, e.g. acme=2,blob=1")
		nofair     = flag.Bool("nofair", false, "disable deterministic fair share (FIFO within priority)")
		workers    = flag.Int("workers", 1, "parallel scoring workers (never changes outcomes)")
		maxBacklog = flag.Int("maxbacklog", 0, "shed submits once this many tasks are queued or running (0 = unbounded)")
		walDir     = flag.String("wal", "", "serve mode: write-ahead log directory (empty = no durability)")
		fsyncName  = flag.String("fsync", "batch", "WAL fsync policy: always, batch or off")
		segBytes   = flag.Int64("segbytes", 1<<20, "WAL segment rotation threshold in bytes")
		snapEvery  = flag.Int("snapevery", 256, "WAL: snapshot and compact after this many appends (0 = never)")
		mttf       = flag.Float64("mttf", 0, "mean time to processor failure (0 = no fault churn)")
		mttr       = flag.Float64("mttr", 0, "mean time to processor repair (required with -mttf)")
		horizon    = flag.Int64("horizon", 0, "fault churn horizon; all processors stay up past it")
		retries    = flag.Int("retries", 0, "per-task retry budget under fault churn")
		faultSeed  = flag.Int64("faultseed", 1, "seed for the fault plan draw")
		replayPath = flag.String("replay", "", "replay mode: arrival trace file (JSONL)")
		noaudit    = flag.Bool("noaudit", false, "replay mode: skip the independent stream audit")
		obsPath    = flag.String("obs", "", "replay mode: write the obs event stream (JSONL) to this file")
		metricsF   = flag.String("metrics", "", "replay mode: write Prometheus metrics to this file")
	)
	flag.Parse()
	if *procsSpec == "" {
		flag.Usage()
		os.Exit(2)
	}
	procs, err := parsePools(*procsSpec)
	if err != nil {
		log.Fatal(err)
	}
	quotas, err := parseQuotas(*quotasSpec)
	if err != nil {
		log.Fatal(err)
	}
	cfg := service.Config{
		Procs:           procs,
		Scheduler:       *schedName,
		DefaultQuota:    *quota,
		Quotas:          quotas,
		NoFairShare:     *nofair,
		Workers:         *workers,
		MaxBacklogTasks: *maxBacklog,
		Obs:             obs.NewTracer(),
		Metrics:         obs.NewRegistry(),
	}
	if *mttf > 0 {
		fc := fault.Config{MTTF: *mttf, MTTR: *mttr, Horizon: *horizon, MaxRetries: *retries}
		if err := fc.Validate(); err != nil {
			log.Fatal(err)
		}
		cfg.Faults = fc.NewPlan(procs, rand.New(rand.NewSource(*faultSeed)))
	}

	if *replayPath != "" {
		if err := replay(cfg, *replayPath, !*noaudit, *obsPath, *metricsF); err != nil {
			log.Fatal(err)
		}
		return
	}

	if err := serve(cfg, *addr, *walDir, *fsyncName, *segBytes, *snapEvery); err != nil {
		log.Fatal(err)
	}
}

// serve runs the HTTP service until SIGINT/SIGTERM, recovering from
// and journaling to the WAL when -wal is set, then drains gracefully.
func serve(cfg service.Config, addr, walDir, fsyncName string, segBytes int64, snapEvery int) error {
	core, err := service.New(cfg)
	if err != nil {
		return err
	}

	var opts []service.HandlerOption
	var jn *service.Journal
	var recovered []service.Rec
	if walDir != "" {
		policy, err := wal.PolicyByName(fsyncName)
		if err != nil {
			return err
		}
		var rec *wal.Recovery
		jn, recovered, rec, err = service.OpenJournal(walDir, service.JournalOptions{
			WAL:           wal.Options{Fsync: policy, SegmentBytes: segBytes},
			SnapshotEvery: snapEvery,
		})
		if err != nil {
			return err
		}
		// The graceful drain path closes the journal explicitly and
		// checks the error; this deferred close covers early error
		// returns (Close is idempotent) and surfaces its failure in the
		// log rather than dropping it.
		defer func() {
			if cerr := jn.Close(); cerr != nil {
				log.Printf("wal close: %v", cerr)
			}
		}()
		log.Printf("wal: %s: %d ops recovered (%d from snapshot, %d segments, %d torn bytes truncated)",
			walDir, len(recovered), rec.SnapshotFrames, rec.Segments, rec.TruncatedBytes)
		opts = append(opts, service.WithJournal(jn), service.StartUnready())
	}

	h := service.NewHandler(core, opts...)
	if jn != nil {
		start := time.Now()
		if err := h.Recover(recovered); err != nil {
			return fmt.Errorf("wal replay: %w", err)
		}
		if n := len(recovered); n > 0 {
			fp, err := service.Fingerprint(cfg.Obs.Events(), cfg.Metrics)
			if err != nil {
				return err
			}
			log.Printf("wal: replayed %d ops in %v; fingerprint %s", n, time.Since(start).Round(time.Millisecond), fp)
		}
	}

	srv := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving on http://%s (procs %v, sched %s)", addr, cfg.Procs, cfg.Scheduler)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately via default handling

	// Graceful drain: stop admitting, finish in-flight requests, make
	// the journal durable, exit 0.
	log.Print("signal received; draining")
	h.StartDrain()
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("shutdown: %w", err)
	}
	if jn != nil {
		if err := jn.Sync(); err != nil {
			return fmt.Errorf("wal sync: %w", err)
		}
		if err := jn.Close(); err != nil {
			return fmt.Errorf("wal close: %w", err)
		}
	}
	log.Print("drained cleanly")
	return nil
}

// replay feeds a recorded arrival trace through a fresh core and
// reports the outcome: admission counts, per-tenant weighted
// completion times, the audit verdict and the replay fingerprint.
func replay(cfg service.Config, path string, audit bool, obsPath, metricsPath string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	ops, err := service.ReadTrace(f)
	if err = errors.Join(err, f.Close()); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	res, err := service.Replay(cfg, ops)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}

	fmt.Printf("replayed %d ops: %d submitted, %d rejected, %d shed, %d cancelled, %d cancel misses, makespan %d\n",
		len(ops), res.Submitted, res.Rejected, res.Shed, res.Cancelled, res.CancelMisses, res.Makespan)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "tenant\tadmitted\tdone\tcancelled\trejected\tweighted completion\tflow sum")
	for _, ts := range res.Summary.Tenants {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.1f\t%d\n",
			ts.Tenant, ts.Admitted, ts.Done, ts.Cancelled, ts.Rejected, ts.WeightedCompletion, ts.FlowSum)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if res.Summary.Kills > 0 {
		fmt.Printf("fault churn: %d kills, %d wasted work units, %d jobs failed\n",
			res.Summary.Kills, res.Summary.WastedWork, res.Summary.Failed)
	}

	if audit {
		sa := verify.StreamAudit{
			Procs:        cfg.Procs,
			DefaultQuota: cfg.DefaultQuota,
			Quotas:       cfg.Quotas,
			FairShare:    !cfg.NoFairShare,
		}
		if cfg.Faults != nil {
			sa.Timeline = cfg.Faults.Timeline
			sa.MaxRetries = cfg.Faults.MaxRetries
		}
		for _, j := range res.Stream {
			sa.Jobs = append(sa.Jobs, verify.StreamJob{
				Job: j.Idx, Tenant: j.Tenant, Priority: j.Priority,
				Weight: j.Weight, Graph: j.Graph,
			})
		}
		if err := verify.AuditServiceStream(sa, res.Events); err != nil {
			return fmt.Errorf("stream audit failed: %w", err)
		}
		fmt.Printf("audit: ok (%d jobs, %d events)\n", len(sa.Jobs), len(res.Events))
	}

	if obsPath != "" {
		if err := writeFile(obsPath, func(w *os.File) error {
			return obs.WriteJSONL(w, res.Events)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d events)\n", obsPath, len(res.Events))
	}
	if metricsPath != "" {
		if err := writeFile(metricsPath, func(w *os.File) error {
			return obs.WritePrometheus(w, cfg.Metrics.Snapshot())
		}); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", metricsPath)
	}

	fmt.Printf("fingerprint: %s\n", res.Fingerprint)
	return nil
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func parsePools(spec string) ([]int, error) {
	parts := strings.Split(spec, ",")
	pools := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad pool size %q: %v", p, err)
		}
		pools = append(pools, v)
	}
	return pools, nil
}

func parseQuotas(spec string) (map[string]int, error) {
	if spec == "" {
		return nil, nil
	}
	quotas := make(map[string]int)
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad quota %q, want tenant=N", part)
		}
		n, err := strconv.Atoi(val)
		if err != nil {
			return nil, fmt.Errorf("bad quota %q: %v", part, err)
		}
		quotas[name] = n
	}
	return quotas, nil
}
