package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"fhs/internal/service"
)

func TestParsePools(t *testing.T) {
	got, err := parsePools(" 4, 2,1")
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{4, 2, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("parsePools = %v, want %v", got, want)
	}
	if _, err := parsePools("4,x"); err == nil {
		t.Fatal("parsePools accepted a non-numeric pool size")
	}
}

func TestParseQuotas(t *testing.T) {
	got, err := parseQuotas("acme=3, beta=1")
	if err != nil {
		t.Fatal(err)
	}
	if want := map[string]int{"acme": 3, "beta": 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("parseQuotas = %v, want %v", got, want)
	}
	if q, err := parseQuotas(""); err != nil || q != nil {
		t.Fatalf("parseQuotas(\"\") = (%v, %v), want (nil, nil)", q, err)
	}
	for _, bad := range []string{"acme", "=3", "acme=x"} {
		if _, err := parseQuotas(bad); err == nil {
			t.Errorf("parseQuotas accepted %q", bad)
		}
	}
}

// TestReplayBadTrace pins replay's file error path: a trace that does
// not parse fails with the path in the error, and the trace file's
// close error is joined rather than dropped (the close runs before
// the parse error is returned).
func TestReplayBadTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, []byte("not a trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := replay(service.Config{}, path, false, "", "")
	if err == nil {
		t.Fatal("replay accepted an unparseable trace")
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("error %q does not name the trace file", err)
	}
	if err := replay(service.Config{}, filepath.Join(t.TempDir(), "missing"), false, "", ""); err == nil {
		t.Fatal("replay succeeded on a missing trace file")
	}
}
