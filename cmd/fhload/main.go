// Command fhload is the trace-driven load and SLO harness: it
// synthesizes a deterministic open-loop arrival trace from a named
// shape preset, drives it against an in-process core (default) or a
// live fhd (-url), and writes a schema-versioned SLO report with
// per-tenant latency percentiles, shed accounting and objective
// attainment.
//
// Run (writes SLO JSON plus a human table):
//
//	fhload -procs 2,2 [-shape poisson|pareto|diurnal|burst|uniform]
//	       [-jobs N] [-seed S] [-mean-gap G] [-tenants acme:2,blob:1]
//	       [-cancel F] [-priorities P] [-scale small|medium]
//	       [-alpha A] [-period P] [-amplitude A] [-burstfactor B] [-duty D]
//	       [-sched MQB|KGreedy] [-workers W] [-quota N] [-quotas t=N,...]
//	       [-nofair] [-maxbacklog N]
//	       [-mttf F -mttr R -horizon H [-retries N] [-faultseed S]]
//	       [-slo tenant=budget[:target],...] [-url http://host:port]
//	       [-trace FILE] [-noaudit] [-note TEXT] [-out SLO.json]
//
// Every latency in the report is simulated time, so reports are
// bit-deterministic: identical seed, shape and machine produce
// identical fingerprints on any host, for any -workers value, and in
// both drive modes. -trace replays a recorded arrival trace (fhgen
// -arrivals JSONL) instead of synthesizing one.
//
// The short CI soak pins an entire workload under one name:
//
//	fhload -soak ci [-url ...] [-workers W] [-out SLO_ci.json]
//
// Compare (exits 2 on a regression beyond the gate or a workload
// mismatch; wall-clock throughput is reported but never gated):
//
//	fhload -compare old.json new.json [-gate 0.25] [-noise 0.05]
//
// Summary (renders a saved report's human table):
//
//	fhload -summary SLO.json
//
// The committed baseline lives at SLO_CI.json; the CI soak job drives
// the pinned workload both in-process and against a live fhd and
// compares both reports to it (warn-only on pull requests, hard gate
// on main). See the Load testing section of EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"fhs/internal/analyze"
	"fhs/internal/fault"
	"fhs/internal/load"
	"fhs/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fhload: ")
	var (
		procsSpec  = flag.String("procs", "", "pool sizes per type, e.g. 2,2 (required unless -soak)")
		shape      = flag.String("shape", "poisson", "arrival shape: uniform, poisson, pareto, diurnal or burst")
		jobs       = flag.Int("jobs", 200, "number of job submits")
		seed       = flag.Int64("seed", 1, "trace seed; also offsets per-job spec seeds")
		meanGap    = flag.Int64("mean-gap", 4, "mean inter-arrival gap in simulated time units")
		tenants    = flag.String("tenants", "", "tenant:weight list, e.g. acme:2,blob:1 (default one tenant)")
		cancelFrac = flag.Float64("cancel", 0, "fraction of jobs cancelled at a later instant")
		priorities = flag.Int("priorities", 0, "assign uniform priorities in [0,N) when > 1")
		scale      = flag.String("scale", "", "job spec scale (empty = small)")
		alpha      = flag.Float64("alpha", 0, "pareto: tail index (> 1; 0 = default 1.5)")
		period     = flag.Int64("period", 0, "diurnal/burst: cycle length (0 = derived)")
		amplitude  = flag.Float64("amplitude", 0, "diurnal: rate swing in [0,1) (0 = default 0.8)")
		burstFac   = flag.Float64("burstfactor", 0, "burst: flash-crowd rate multiplier (0 = default 6)")
		duty       = flag.Float64("duty", 0, "burst: fraction of each period at the burst rate (0 = default 0.1)")
		schedName  = flag.String("sched", "", "scheduler name (MQB or KGreedy; empty = MQB)")
		workers    = flag.Int("workers", 1, "client/scoring workers (never changes outcomes)")
		quota      = flag.Int("quota", 0, "default per-tenant admission quota (0 = unlimited)")
		quotasSpec = flag.String("quotas", "", "per-tenant quota overrides, e.g. acme=2,blob=1")
		nofair     = flag.Bool("nofair", false, "disable deterministic fair share")
		maxBacklog = flag.Int("maxbacklog", 0, "shed submits once this many tasks are queued or running (0 = unbounded)")
		mttf       = flag.Float64("mttf", 0, "mean time to processor failure (0 = no fault churn; in-process mode only)")
		mttr       = flag.Float64("mttr", 0, "mean time to processor repair (required with -mttf)")
		horizon    = flag.Int64("horizon", 0, "fault churn horizon")
		retries    = flag.Int("retries", 0, "per-task retry budget under fault churn")
		faultSeed  = flag.Int64("faultseed", 1, "seed for the fault plan draw")
		sloSpec    = flag.String("slo", "", "per-tenant objectives: tenant=budget[:target],... (target defaults to 0.99)")
		url        = flag.String("url", "", "drive a live fhd at this base URL instead of an in-process core")
		tracePath  = flag.String("trace", "", "replay this arrival trace (JSONL) instead of synthesizing one")
		noaudit    = flag.Bool("noaudit", false, "skip the independent stream audit of the run")
		note       = flag.String("note", "", "free-form label stored in the report")
		out        = flag.String("out", "", "write the SLO report JSON to this file")
		soak       = flag.String("soak", "", "named soak preset pinning the whole workload (currently: ci)")
		summaryF   = flag.String("summary", "", "render a saved report's human table and exit")
		compare    = flag.Bool("compare", false, "compare two reports: fhload -compare old.json new.json")
		gateF      = flag.Float64("gate", 0.25, "compare: worsening that fails the comparison")
		noise      = flag.Float64("noise", 0.05, "compare: delta treated as noise")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			log.Fatal("usage: fhload -compare old.json new.json")
		}
		runCompare(flag.Arg(0), flag.Arg(1), load.Gate{Noise: *noise, Fail: *gateF})
		return
	}
	if *summaryF != "" {
		rep, err := load.LoadReport(*summaryF)
		if err != nil {
			log.Fatal(err)
		}
		if err := analyze.WriteSLO(os.Stdout, rep); err != nil {
			log.Fatal(err)
		}
		return
	}
	if flag.NArg() != 0 {
		log.Fatalf("unexpected arguments %v (did you mean -compare?)", flag.Args())
	}

	tenantSpecs, err := parseTenants(*tenants)
	if err != nil {
		log.Fatal(err)
	}
	quotas, err := parseQuotas(*quotasSpec)
	if err != nil {
		log.Fatal(err)
	}
	slos, err := parseSLOs(*sloSpec)
	if err != nil {
		log.Fatal(err)
	}

	tc := load.TraceConfig{
		Shape:          *shape,
		Jobs:           *jobs,
		MeanGap:        *meanGap,
		Tenants:        tenantSpecs,
		CancelFrac:     *cancelFrac,
		K:              0, // derived from -procs below
		Scale:          *scale,
		SeedBase:       *seed,
		PriorityLevels: *priorities,
		ParetoAlpha:    *alpha,
		Period:         *period,
		Amplitude:      *amplitude,
		BurstFactor:    *burstFac,
		Duty:           *duty,
	}
	cfg := load.RunConfig{
		Scheduler:       *schedName,
		Workers:         *workers,
		DefaultQuota:    *quota,
		Quotas:          quotas,
		NoFairShare:     *nofair,
		MaxBacklogTasks: *maxBacklog,
		SLOs:            slos,
		Audit:           !*noaudit,
		URL:             *url,
		Note:            *note,
	}

	if *soak != "" {
		if *soak != "ci" {
			log.Fatalf("unknown soak preset %q (want ci)", *soak)
		}
		// The ci soak pins the entire workload — any flag that would
		// change outcomes is overridden, so one committed SLO_CI.json
		// gates every runner. Mode flags (-url, -workers, -noaudit,
		// -out) stay free because they never change outcomes.
		tc, cfg.SLOs = load.CISoak()
		cfg.Scheduler = ""
		cfg.DefaultQuota = 0
		cfg.Quotas = nil
		cfg.NoFairShare = false
		cfg.MaxBacklogTasks = load.CISoakMaxBacklog
		cfg.Procs = load.CISoakProcs()
	} else {
		if *procsSpec == "" {
			log.Fatal("-procs is required (e.g. -procs 2,2); or use -soak ci")
		}
		cfg.Procs, err = parsePools(*procsSpec)
		if err != nil {
			log.Fatal(err)
		}
		tc.K = len(cfg.Procs)
	}

	if *mttf > 0 {
		fc := fault.Config{MTTF: *mttf, MTTR: *mttr, Horizon: *horizon, MaxRetries: *retries}
		if err := fc.Validate(); err != nil {
			log.Fatal(err)
		}
		cfg.Faults = fc.NewPlan(cfg.Procs, rand.New(rand.NewSource(*faultSeed)))
	}

	var rep *load.Report
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		ops, err := service.ReadTrace(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		rep, err = load.RunOps(cfg, tc, ops)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		rep, err = load.Run(cfg, tc)
		if err != nil {
			log.Fatal(err)
		}
	}

	if err := analyze.WriteSLO(os.Stdout, rep); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		err = rep.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
	if !rep.SLOMet {
		os.Exit(1)
	}
}

func runCompare(oldPath, newPath string, g load.Gate) {
	oldRep, err := load.LoadReport(oldPath)
	if err != nil {
		log.Fatal(err)
	}
	newRep, err := load.LoadReport(newPath)
	if err != nil {
		log.Fatal(err)
	}
	c, err := load.Compare(oldRep, newRep, g)
	if err != nil {
		log.Fatal(err)
	}
	if err := load.WriteComparison(os.Stdout, c); err != nil {
		log.Fatal(err)
	}
	if c.Failed() {
		os.Exit(2)
	}
}

func parsePools(spec string) ([]int, error) {
	parts := strings.Split(spec, ",")
	pools := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad pool size %q: %v", p, err)
		}
		pools = append(pools, v)
	}
	return pools, nil
}

// parseTenants parses name:weight pairs; weights are optional and
// default to 1.
func parseTenants(spec string) ([]service.TenantSpec, error) {
	if spec == "" {
		return nil, nil
	}
	var specs []service.TenantSpec
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), ":")
		if name == "" {
			return nil, fmt.Errorf("bad tenant %q, want name or name:weight", part)
		}
		w := 1.0
		if ok {
			var err error
			if w, err = strconv.ParseFloat(val, 64); err != nil || w <= 0 {
				return nil, fmt.Errorf("bad tenant weight %q", part)
			}
		}
		specs = append(specs, service.TenantSpec{Name: name, Weight: w})
	}
	return specs, nil
}

func parseQuotas(spec string) (map[string]int, error) {
	if spec == "" {
		return nil, nil
	}
	quotas := make(map[string]int)
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad quota %q, want tenant=N", part)
		}
		n, err := strconv.Atoi(val)
		if err != nil {
			return nil, fmt.Errorf("bad quota %q: %v", part, err)
		}
		quotas[name] = n
	}
	return quotas, nil
}

// parseSLOs parses tenant=budget[:target] triples, e.g.
// "acme=512:0.95,blob=768".
func parseSLOs(spec string) ([]load.SLO, error) {
	if spec == "" {
		return nil, nil
	}
	var slos []load.SLO
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad SLO %q, want tenant=budget[:target]", part)
		}
		budgetStr, targetStr, hasTarget := strings.Cut(val, ":")
		budget, err := strconv.ParseInt(budgetStr, 10, 64)
		if err != nil || budget <= 0 {
			return nil, fmt.Errorf("bad SLO budget %q: want a positive integer", part)
		}
		s := load.SLO{Tenant: name, FlowBudget: budget}
		if hasTarget {
			if s.Target, err = strconv.ParseFloat(targetStr, 64); err != nil || s.Target <= 0 || s.Target > 1 {
				return nil, fmt.Errorf("bad SLO target %q: want a fraction in (0,1]", part)
			}
		}
		slos = append(slos, s)
	}
	return slos, nil
}
