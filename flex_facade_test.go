package fhs

import (
	"math/rand"
	"testing"
)

func TestFlexFacadeEndToEnd(t *testing.T) {
	b := NewFlexJobBuilder(2)
	load := b.AddTask([]int64{4, FlexNoWork}) // CPU only
	kern := b.AddTask([]int64{12, 6})         // CPU or GPU; GPU twice as fast
	b.AddEdge(load, kern)
	job, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateFlex(job, NewFlexBestFit(), []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionTime != 10 { // 4 on CPU, then 6 on GPU
		t.Errorf("completion = %d, want 10", res.CompletionTime)
	}
	if res.Placed[1] != 1 {
		t.Errorf("kernel not placed on GPU: placements %v", res.Placed)
	}
}

func TestFlexFacadePolicies(t *testing.T) {
	names := map[string]FlexPolicy{
		"FlexGreedy":  NewFlexGreedy(),
		"FlexBestFit": NewFlexBestFit(),
		"FlexBalance": NewFlexBalance(),
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("Name = %q, want %q", p.Name(), want)
		}
	}
}

func TestFlexFromJobFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	job, err := GenerateWorkload(DefaultWorkloadConfig(EPWorkload, 3, LayeredTyping), rng)
	if err != nil {
		t.Fatal(err)
	}
	fj := FlexFromJob(job, 0.5, 1.5, rng)
	if fj.NumTasks() != job.NumTasks() {
		t.Errorf("task count changed: %d -> %d", job.NumTasks(), fj.NumTasks())
	}
	res, err := SimulateFlex(fj, NewFlexBalance(), []int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	lb, err := fj.LowerBound([]int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.CompletionTime) < lb {
		t.Errorf("completion %d below bound %g", res.CompletionTime, lb)
	}
}

func TestWorkloadFacadeHelpers(t *testing.T) {
	if got := SkewMachine([]int{10, 10}, 5); got[0] != 2 || got[1] != 10 {
		t.Errorf("SkewMachine = %v", got)
	}
	specs, err := FigureSpecs("4", ExperimentOptions{Instances: 3, Seed: 1})
	if err != nil || len(specs) != 6 {
		t.Errorf("FigureSpecs: %d specs, %v", len(specs), err)
	}
	if _, err := FigureSpecs("99", ExperimentOptions{}); err == nil {
		t.Error("FigureSpecs accepted unknown figure")
	}
	opt, err := AdversarialOptimum([]int{3, 3}, 4)
	if err != nil || opt != 13 {
		t.Errorf("AdversarialOptimum = %d, %v", opt, err)
	}
	online, err := AdversarialExpectedOnline([]int{3, 3}, 4)
	if err != nil || online <= float64(opt) {
		t.Errorf("AdversarialExpectedOnline = %g, %v", online, err)
	}
	if SmallMachine.MaxPerType != 5 || MediumMachine.MinPerType != 10 {
		t.Error("machine presets wrong")
	}
	job, err := NewAdversarialJob(AdversarialConfig{Procs: []int{2, 2}, M: 2}, rand.New(rand.NewSource(1)))
	if err != nil || job.Graph.NumTasks() == 0 {
		t.Errorf("NewAdversarialJob: %v", err)
	}
}
