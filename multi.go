package fhs

import (
	"math/rand"

	"fhs/internal/multi"
)

// Multi-job scheduling — a stream of K-DAG jobs with release times
// sharing one machine, the Cosmos-style setting that motivates the
// paper.
type (
	// JobStream is an immutable, release-ordered collection of jobs.
	JobStream = multi.Stream
	// StreamJob is one job of a stream.
	StreamJob = multi.JobSpec
	// StreamConfig describes a synthetic stream distribution.
	StreamConfig = multi.StreamConfig
	// StreamPolicy schedules across all released jobs.
	StreamPolicy = multi.Policy
	// StreamResult reports makespan and per-job completions.
	StreamResult = multi.Result
)

// NewJobStream validates and wraps a job list.
func NewJobStream(jobs []StreamJob) (*JobStream, error) { return multi.NewStream(jobs) }

// GenerateJobStream draws a stream: jobs from a workload distribution,
// releases from an exponential inter-arrival process.
func GenerateJobStream(cfg StreamConfig, rng *rand.Rand) (*JobStream, error) {
	return multi.GenerateStream(cfg, rng)
}

// SimulateStream runs a stream on the machine under the policy.
func SimulateStream(s *JobStream, p StreamPolicy, procs []int) (StreamResult, error) {
	return multi.Run(s, p, procs)
}

// Stream policies.
func NewGlobalGreedy() StreamPolicy { return multi.NewGlobalGreedy() }

// NewFCFS returns the strict job-arrival-order policy.
func NewFCFS() StreamPolicy { return multi.NewFCFS() }

// NewSRPT returns the shortest-remaining-work-first policy.
func NewSRPT() StreamPolicy { return multi.NewSRPT() }

// NewBalancedMQB returns the cross-job utilization-balancing policy.
func NewBalancedMQB() StreamPolicy { return multi.NewBalancedMQB() }
