// JIT: the open problem from the paper's conclusion — flexible tasks.
//
// "With the support of JIT, a task can be compiled to different
// binaries at run time and flexibly executed on different types of
// resources." This example sweeps the fraction of JIT-compilable tasks
// from 0% to 100% on layered EP jobs and reports the mean completion
// time under three dispatch policies:
//
//   - FlexGreedy: FIFO, takes any admissible task (can badly misplace),
//   - FlexBestFit: prefers tasks whose fastest type is the free pool,
//   - FlexBalance: MQB's utilization balancing lifted to flexible tasks.
//
// Foreign binaries run 1.5x slower than native ones, so flexibility is
// a trade: it can fill idle pools but wastes cycles. Run with:
//
//	go run ./examples/jit
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fhs"
)

func main() {
	log.SetFlags(0)

	const (
		k         = 4
		instances = 100
		penalty   = 1.5
	)
	procs := []int{3, 3, 3, 3}
	policies := []func() fhs.FlexPolicy{fhs.NewFlexGreedy, fhs.NewFlexBestFit, fhs.NewFlexBalance}

	fmt.Printf("%-6s  %12s  %12s  %12s\n", "flex%", "FlexGreedy", "FlexBestFit", "FlexBalance")
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
		sums := make([]float64, len(policies))
		for i := 0; i < instances; i++ {
			rng := rand.New(rand.NewSource(int64(7000 + i)))
			job, err := fhs.GenerateWorkload(fhs.DefaultWorkloadConfig(fhs.EPWorkload, k, fhs.LayeredTyping), rng)
			if err != nil {
				log.Fatal(err)
			}
			fj := fhs.FlexFromJob(job, frac, penalty, rng)
			for p, mk := range policies {
				res, err := fhs.SimulateFlex(fj, mk(), procs)
				if err != nil {
					log.Fatal(err)
				}
				sums[p] += float64(res.CompletionTime)
			}
		}
		fmt.Printf("%-6.0f  %12.1f  %12.1f  %12.1f\n",
			frac*100, sums[0]/instances, sums[1]/instances, sums[2]/instances)
	}
	fmt.Println("\nWith balance-aware dispatch, JIT flexibility steadily cuts completion")
	fmt.Println("time; naive FIFO dispatch squanders it (and can even regress).")
}
