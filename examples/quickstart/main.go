// Quickstart: build a small heterogeneous job by hand, schedule it
// with the online KGreedy baseline and with MQB, and compare both
// against the completion-time lower bound.
//
// The job is the paper's Figure 1 shape in miniature: a pipeline of
// CPU (type 0), GPU (type 1) and vector-unit (type 2) stages with some
// independent side work. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fhs"
)

func main() {
	log.SetFlags(0)

	const (
		cpu = fhs.ResourceType(0)
		gpu = fhs.ResourceType(1)
		vec = fhs.ResourceType(2)
	)

	// A small image-processing pipeline: decode on CPU, filter on GPU,
	// quantize on the vector unit, encode on CPU — six frames, plus
	// CPU-only bookkeeping work that is ready first. An online FIFO
	// scheduler burns its CPUs on the bookkeeping and starves the GPU;
	// MQB sees that decoding unlocks GPU and vector work and runs the
	// decodes first.
	b := fhs.NewJobBuilder(3)
	for i := 0; i < 12; i++ {
		b.AddTask(cpu, 2) // independent bookkeeping, enqueued first
	}
	for frame := 0; frame < 6; frame++ {
		decode := b.AddTask(cpu, 2)
		filter := b.AddTask(gpu, 6)
		quant := b.AddTask(vec, 3)
		encode := b.AddTask(cpu, 2)
		b.AddChain(decode, filter, quant, encode)
	}
	job, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	procs := []int{2, 1, 1} // 2 CPUs, 1 GPU, 1 vector unit
	lb, err := fhs.LowerBound(job, procs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job: %d tasks, span %d, lower bound %.1f on machine %v\n\n",
		job.NumTasks(), job.Span(), lb, procs)

	for _, name := range []string{"KGreedy", "MQB"} {
		sched, err := fhs.NewScheduler(name, fhs.SchedulerParams{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := fhs.Simulate(job, sched, fhs.SimConfig{Procs: procs})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s completion %3d  ratio %.3f  utilization", name, res.CompletionTime,
			fhs.CompletionRatio(res.CompletionTime, lb))
		for _, u := range res.Utilization {
			fmt.Printf(" %.2f", u)
		}
		fmt.Println()
	}
}
