// Cluster: a day in the life of a Cosmos-style cluster — a stream of
// heterogeneous analysis jobs arriving over time, scheduled by four
// cross-job policies:
//
//   - GlobalGreedy: online FIFO over all released work,
//   - FCFS: strict job arrival order (convoy effect on display),
//   - SRPT: shortest-remaining-work job first (flow-time optimizer),
//   - BalancedMQB: the paper's utilization balancing applied to the
//     merged queues of all jobs.
//
// The program reports makespan, mean flow time and max flow time over
// a batch of streams. Run with:
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fhs"
)

func main() {
	log.SetFlags(0)

	const (
		k        = 4
		streams  = 30
		jobsPer  = 6
		interArr = 40.0
	)
	procs := []int{4, 4, 4, 4}
	policies := []func() fhs.StreamPolicy{
		fhs.NewGlobalGreedy, fhs.NewFCFS, fhs.NewSRPT, fhs.NewBalancedMQB,
	}

	type agg struct{ makespan, meanFlow, maxFlow float64 }
	sums := make([]agg, len(policies))
	for i := 0; i < streams; i++ {
		rng := rand.New(rand.NewSource(int64(4000 + i)))
		cfg := fhs.StreamConfig{
			Jobs:             jobsPer,
			Workload:         fhs.DefaultWorkloadConfig(fhs.EPWorkload, k, fhs.LayeredTyping),
			MeanInterarrival: interArr,
		}
		// Keep jobs modest so several overlap in the machine.
		cfg.Workload.EP.BranchesMin, cfg.Workload.EP.BranchesMax = 8, 16
		stream, err := fhs.GenerateJobStream(cfg, rng)
		if err != nil {
			log.Fatal(err)
		}
		for p, mk := range policies {
			res, err := fhs.SimulateStream(stream, mk(), procs)
			if err != nil {
				log.Fatal(err)
			}
			sums[p].makespan += float64(res.Makespan)
			sums[p].meanFlow += res.MeanFlow(stream)
			sums[p].maxFlow += float64(res.MaxFlow(stream))
		}
	}

	fmt.Printf("%d streams of %d layered-EP jobs on machine %v:\n\n", streams, jobsPer, procs)
	fmt.Printf("%-14s  %10s  %10s  %10s\n", "policy", "makespan", "mean flow", "max flow")
	names := []string{"GlobalGreedy", "FCFS", "SRPT", "BalancedMQB"}
	for p := range policies {
		fmt.Printf("%-14s  %10.1f  %10.1f  %10.1f\n", names[p],
			sums[p].makespan/streams, sums[p].meanFlow/streams, sums[p].maxFlow/streams)
	}
	fmt.Println("\nBalancedMQB gets the best makespan — the paper's utilization")
	fmt.Println("balancing carries over to merged multi-job queues — while SRPT is")
	fmt.Println("the flow-time specialist; global FIFO trails everything.")
}
