// Cosmos: a Scope-style data-analysis job on server classes.
//
// The paper motivates K-DAG scheduling with Cosmos, Microsoft's
// map-reduce-style analysis platform behind Bing: a Scope program
// compiles to a DAG of stages, each stage fans out over servers, and
// servers cluster into classes by data placement — the classes act as
// functionally heterogeneous resources because tasks are not assigned
// across classes.
//
// This example builds a synthetic Scope job — extract, partition,
// aggregate, join, output stages spread over three server classes —
// and compares all six schedulers from the paper on it. Run with:
//
//	go run ./examples/cosmos
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fhs"
)

// stage describes one Scope operator: how many parallel tasks, which
// server class owns the data, and per-task work.
type stage struct {
	name  string
	class fhs.ResourceType
	tasks int
	work  int64
}

func main() {
	log.SetFlags(0)
	//fhlint:ignore seedflow pedagogical example: a fixed literal seed keeps the walkthrough output reproducible
	rng := rand.New(rand.NewSource(2026))

	// Three server classes (e.g. raw-log store, index store, scratch).
	stages := []stage{
		{"extract", 0, 40, 3},   // read raw logs where they live
		{"partition", 2, 24, 2}, // shuffle to scratch servers
		{"aggregate", 1, 16, 5}, // combine against the index class
		{"join", 2, 12, 4},      // join partials on scratch
		{"output", 0, 6, 2},     // write results back to the log store
	}

	b := fhs.NewJobBuilder(3)
	var prev []fhs.TaskID
	for _, st := range stages {
		cur := make([]fhs.TaskID, st.tasks)
		for i := range cur {
			// Work varies ±50% around the stage nominal, mimicking data
			// skew across partitions.
			w := st.work + rng.Int63n(st.work+1) - st.work/2
			if w < 1 {
				w = 1
			}
			cur[i] = b.AddTask(st.class, w)
		}
		// Each task of a stage consumes a sample of the previous
		// stage's partitions (Scope stages are rarely all-to-all).
		for _, c := range cur {
			if len(prev) == 0 {
				continue
			}
			connected := false
			for _, p := range prev {
				if rng.Float64() < 0.15 {
					b.AddEdge(p, c)
					connected = true
				}
			}
			if !connected {
				b.AddEdge(prev[rng.Intn(len(prev))], c)
			}
		}
		prev = cur
	}
	job, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	procs := []int{8, 4, 6} // servers per class available to this job
	lb, err := fhs.LowerBound(job, procs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Scope job: %d tasks over %d server classes, span %d, lower bound %.1f\n\n",
		job.NumTasks(), job.K(), job.Span(), lb)

	fmt.Printf("%-8s  %10s  %6s\n", "sched", "completion", "ratio")
	for _, name := range fhs.SchedulerNames() {
		sched, err := fhs.NewScheduler(name, fhs.SchedulerParams{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := fhs.Simulate(job, sched, fhs.SimConfig{Procs: procs})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  %10d  %6.3f\n", name, res.CompletionTime,
			fhs.CompletionRatio(res.CompletionTime, lb))
	}
}
