// Lowerbound: an empirical demonstration of Theorem 2.
//
// The program draws adversarial K-DAG instances (Figure 2 of the
// paper), runs the online KGreedy scheduler on them, and compares its
// mean completion time against
//
//   - the offline optimum T* = K − 1 + M·PK (achieved by running the
//     hidden "active" tasks first), and
//   - the theoretical expectation lower bound for any online algorithm
//     from the proof of Theorem 2.
//
// As K grows, KGreedy's competitive ratio on these jobs climbs toward
// K + 1 − Σα 1/(Pα+1) − 1/(Pmax+1): online scheduling degrades
// linearly in the number of resource types. Run with:
//
//	go run ./examples/lowerbound
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fhs"
)

func main() {
	log.SetFlags(0)

	const (
		perType   = 3
		m         = 6
		instances = 50
	)

	fmt.Printf("%2s  %10s  %12s  %14s  %12s  %12s\n",
		"K", "optimum", "mean online", "theory online", "online/opt", "Thm 2 bound")
	for k := 1; k <= 6; k++ {
		procs := make([]int, k)
		for i := range procs {
			procs[i] = perType
		}
		opt, err := fhs.AdversarialOptimum(procs, m)
		if err != nil {
			log.Fatal(err)
		}
		theory, err := fhs.AdversarialExpectedOnline(procs, m)
		if err != nil {
			log.Fatal(err)
		}
		bound, err := fhs.OnlineLowerBound(procs)
		if err != nil {
			log.Fatal(err)
		}

		var mean float64
		for i := 0; i < instances; i++ {
			rng := rand.New(rand.NewSource(int64(k*10_000 + i)))
			job, err := fhs.NewAdversarialJob(fhs.AdversarialConfig{Procs: procs, M: m}, rng)
			if err != nil {
				log.Fatal(err)
			}
			sched, err := fhs.NewScheduler("KGreedy", fhs.SchedulerParams{})
			if err != nil {
				log.Fatal(err)
			}
			res, err := fhs.Simulate(job.Graph, sched, fhs.SimConfig{Procs: procs})
			if err != nil {
				log.Fatal(err)
			}
			mean += float64(res.CompletionTime)
		}
		mean /= instances

		fmt.Printf("%2d  %10d  %12.1f  %14.1f  %12.2f  %12.2f\n",
			k, opt, mean, theory, mean/float64(opt), bound)
	}
	fmt.Println("\nonline/opt climbs with K and tracks the Theorem 2 bound from below,")
	fmt.Println("reproducing the Ω(K) separation between online and offline scheduling.")
}
