// Hetclient: a heterogeneous client device (CPU + GPU + DSP) running
// a batch of layered EP jobs, showing how much completion time MQB
// recovers over online greedy scheduling as the workload becomes more
// structured.
//
// The program draws layered and random EP jobs from the calibrated
// distributions and reports the average completion-time ratio of
// KGreedy and MQB on a small client machine, plus MQB's behaviour
// under one-step lookahead and noisy estimates (the realistic case
// where a client predicts task costs from history). Run with:
//
//	go run ./examples/hetclient
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fhs"
)

func main() {
	log.SetFlags(0)

	const (
		k         = 3 // CPU, GPU, DSP
		instances = 200
	)
	machines := []int{2, 1, 1}
	scheds := []string{"KGreedy", "MQB", "MQB+1Step+Pre", "MQB+All+Noise"}

	for _, typing := range []fhs.WorkloadTyping{fhs.LayeredTyping, fhs.RandomTyping} {
		cfg := fhs.DefaultWorkloadConfig(fhs.EPWorkload, k, typing)
		sums := make(map[string]float64, len(scheds))
		for i := 0; i < instances; i++ {
			rng := rand.New(rand.NewSource(int64(1000 + i)))
			job, err := fhs.GenerateWorkload(cfg, rng)
			if err != nil {
				log.Fatal(err)
			}
			lb, err := fhs.LowerBound(job, machines)
			if err != nil {
				log.Fatal(err)
			}
			for _, name := range scheds {
				sched, err := fhs.NewScheduler(name, fhs.SchedulerParams{Seed: int64(i)})
				if err != nil {
					log.Fatal(err)
				}
				res, err := fhs.Simulate(job, sched, fhs.SimConfig{Procs: machines})
				if err != nil {
					log.Fatal(err)
				}
				sums[name] += fhs.CompletionRatio(res.CompletionTime, lb)
			}
		}
		fmt.Printf("%v EP on client machine %v (%d instances):\n", typing, machines, instances)
		for _, name := range scheds {
			fmt.Printf("  %-16s avg ratio %.3f\n", name, sums[name]/instances)
		}
		fmt.Println()
	}
	fmt.Println("Structured (layered) workloads reward lookahead; random ones don't —")
	fmt.Println("the same contrast the paper's Figure 4 reports.")
}
